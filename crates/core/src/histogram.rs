//! The [`Histogram`] type: a bucketisation of a relation attribute's
//! domain values plus the Proposition 3.1 error formulas.
//!
//! A histogram is built *for* a concrete frequency assignment: value index
//! `i` (a position in the relation's frequency vector, or a row-major cell
//! of its frequency matrix) carries frequency `freqs[i]` and is mapped to
//! bucket `assignment[i]`. The paper allows *any* subset of domain values
//! to form a bucket (§2.3) — buckets are not required to be ranges of the
//! natural value order — so the assignment vector is fully general.

use crate::bucket::BucketStats;
use crate::error::{HistError, Result};
use crate::interp::ValueBounds;
use serde::{Deserialize, Serialize};

/// How bucket averages are materialised when approximating frequencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundingMode {
    /// Real-valued averages `Tᵢ / Pᵢ` (used by all analysis formulas).
    Exact,
    /// "The integer closest to `Σ t / |b|`" — the representation the
    /// paper describes for system catalogs (§2.3).
    PaperRounded,
}

/// The most specific class a histogram belongs to, following the paper's
/// taxonomy (§2.3, Definitions 2.1–2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HistogramClass {
    /// One bucket: the uniform-distribution assumption.
    Trivial,
    /// Serial, with every bucket univalued except at most one, whose
    /// univalued buckets hold the extreme frequencies (Definition 2.2).
    /// End-biased histograms are serial.
    EndBiased,
    /// At most one multivalued bucket, but *not* serial (the univalued
    /// buckets hold non-extreme frequencies).
    Biased,
    /// Buckets partition the frequency order contiguously
    /// (Definition 2.1) but more than one bucket is multivalued.
    Serial,
    /// None of the above.
    General,
}

impl HistogramClass {
    /// Whether `other` is the same class or a specialisation of `self`
    /// in the paper's taxonomy.
    ///
    /// The classes form a containment lattice: every histogram is
    /// `General`; end-biased histograms are both `Serial` and `Biased`;
    /// the one-bucket `Trivial` histogram is (degenerately) all of them.
    /// A builder that declares class `C` may therefore legitimately
    /// produce a histogram whose most-specific [`Histogram::class`] is
    /// any class contained in `C` — e.g. `v_opt_serial` at `β = M`
    /// yields all-singleton buckets, which classify as `EndBiased`.
    pub fn contains(self, other: HistogramClass) -> bool {
        use HistogramClass::*;
        match self {
            General => true,
            Serial => matches!(other, Serial | EndBiased | Trivial),
            Biased => matches!(other, Biased | EndBiased | Trivial),
            EndBiased => matches!(other, EndBiased | Trivial),
            Trivial => matches!(other, Trivial),
        }
    }
}

/// A histogram over `M` domain values: a bucket id per value plus
/// per-bucket sufficient statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `assignment[i]` is the bucket of value index `i`.
    assignment: Vec<u32>,
    buckets: Vec<BucketStats>,
    /// Per-bucket value spans, populated by [`Histogram::attach_bounds`].
    /// Empty until a concrete value domain is attached — bucketisation
    /// itself is over frequency *indices* and knows no values.
    bounds: Vec<ValueBounds>,
}

impl Histogram {
    /// Builds a histogram from an explicit bucket assignment.
    ///
    /// `freqs[i]` is the frequency of value index `i`;
    /// `assignment[i] < num_buckets` names its bucket. Every bucket in
    /// `0..num_buckets` must be non-empty.
    pub fn from_assignment(
        freqs: &[u64],
        assignment: Vec<u32>,
        num_buckets: usize,
    ) -> Result<Self> {
        if freqs.is_empty() {
            return Err(HistError::EmptyFrequencies);
        }
        if assignment.len() != freqs.len() {
            return Err(HistError::InvalidAssignment(format!(
                "assignment covers {} values but {} frequencies were given",
                assignment.len(),
                freqs.len()
            )));
        }
        if num_buckets == 0 || num_buckets > freqs.len() {
            return Err(HistError::InvalidBucketCount {
                requested: num_buckets,
                values: freqs.len(),
            });
        }
        let mut buckets = vec![BucketStats::new(); num_buckets];
        for (&f, &b) in freqs.iter().zip(&assignment) {
            let b = b as usize;
            if b >= num_buckets {
                return Err(HistError::InvalidAssignment(format!(
                    "bucket id {b} out of range 0..{num_buckets}"
                )));
            }
            buckets[b].add(f);
        }
        if let Some(empty) = buckets.iter().position(BucketStats::is_empty) {
            return Err(HistError::InvalidAssignment(format!(
                "bucket {empty} is empty"
            )));
        }
        Ok(Self {
            assignment,
            buckets,
            bounds: Vec::new(),
        })
    }

    /// Attaches the concrete value domain to the histogram, recording
    /// each bucket's value span `[min, max + 1)` and distinct-count.
    ///
    /// `values[i]` is the domain value at frequency index `i` (the same
    /// ordering the assignment was built over) and must be strictly
    /// ascending with exactly [`Histogram::num_values`] entries.
    pub fn attach_bounds(&mut self, values: &[u64]) -> Result<()> {
        if values.len() != self.num_values() {
            return Err(HistError::InvalidAssignment(format!(
                "bounds cover {} values but the histogram has {}",
                values.len(),
                self.num_values()
            )));
        }
        if values.windows(2).any(|w| w[0] >= w[1]) {
            return Err(HistError::InvalidAssignment(
                "bounds require strictly ascending domain values".to_string(),
            ));
        }
        let mut bounds = vec![
            ValueBounds {
                lo: u64::MAX,
                hi: 0,
                distinct: 0,
            };
            self.num_buckets()
        ];
        for (&v, &b) in values.iter().zip(&self.assignment) {
            let bb = &mut bounds[b as usize];
            bb.lo = bb.lo.min(v);
            bb.hi = bb.hi.max(v.saturating_add(1));
            bb.distinct += 1;
        }
        self.bounds = bounds;
        Ok(())
    }

    /// Per-bucket value spans, or the empty slice when no domain has
    /// been attached.
    pub fn bounds(&self) -> &[ValueBounds] {
        &self.bounds
    }

    /// The value span of bucket `b`, if bounds are attached.
    pub fn bucket_bounds(&self, b: usize) -> Option<&ValueBounds> {
        self.bounds.get(b)
    }

    /// Number of buckets `β`.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Number of domain values `M` the histogram covers.
    pub fn num_values(&self) -> usize {
        self.assignment.len()
    }

    /// The bucket id of value index `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn bucket_of(&self, i: usize) -> u32 {
        self.assignment[i]
    }

    /// Per-value bucket ids.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Statistics of bucket `b`.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn bucket(&self, b: usize) -> &BucketStats {
        &self.buckets[b]
    }

    /// All bucket statistics.
    pub fn buckets(&self) -> &[BucketStats] {
        &self.buckets
    }

    /// The approximate frequency of value index `i` under the histogram.
    pub fn approx_frequency(&self, i: usize, mode: RoundingMode) -> f64 {
        let b = &self.buckets[self.assignment[i] as usize];
        match mode {
            RoundingMode::Exact => b.average(),
            RoundingMode::PaperRounded => b.average_rounded() as f64,
        }
    }

    /// The full approximated frequency vector (one entry per value
    /// index) — this is the paper's *histogram matrix* flattened.
    pub fn approx_frequencies(&self, mode: RoundingMode) -> Vec<f64> {
        let averages: Vec<f64> = self
            .buckets
            .iter()
            .map(|b| match mode {
                RoundingMode::Exact => b.average(),
                RoundingMode::PaperRounded => b.average_rounded() as f64,
            })
            .collect();
        self.assignment
            .iter()
            .map(|&b| averages[b as usize])
            .collect()
    }

    /// Exact self-join size `S = Σ tᵢ²` of the underlying frequencies,
    /// recovered from the buckets' sufficient statistics.
    pub fn exact_self_join_size(&self) -> u128 {
        self.buckets.iter().map(|b| b.sum_sq()).sum()
    }

    /// Approximate self-join size `S' = Σᵢ Tᵢ²/Pᵢ` (Proposition 3.1).
    ///
    /// With [`RoundingMode::PaperRounded`], each bucket contributes
    /// `Pᵢ · round(Tᵢ/Pᵢ)²` instead.
    pub fn approx_self_join_size(&self, mode: RoundingMode) -> f64 {
        self.buckets
            .iter()
            .map(|b| match mode {
                RoundingMode::Exact => b.self_join_contribution(),
                RoundingMode::PaperRounded => {
                    let a = b.average_rounded() as f64;
                    b.count() as f64 * a * a
                }
            })
            .sum()
    }

    /// Self-join estimation error `S − S' = Σᵢ Pᵢ·Vᵢ` (Proposition 3.1,
    /// formula (3)). Always non-negative: histograms under-estimate
    /// self-joins.
    ///
    /// This is the objective minimised by the v-optimal constructions.
    pub fn self_join_error(&self) -> f64 {
        self.buckets.iter().map(|b| b.error_contribution()).sum()
    }

    /// Whether the histogram is serial (Definition 2.1): for every pair
    /// of buckets, all frequencies of one are ≤ all frequencies of the
    /// other. Ties at a shared boundary are permitted (the definition's
    /// strict inequalities are vacuous for equal frequencies, which carry
    /// no error either way).
    pub fn is_serial(&self) -> bool {
        let mut ranges: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .map(|b| (b.min_freq(), b.max_freq()))
            .collect();
        ranges.sort_unstable();
        ranges.windows(2).all(|w| w[0].1 <= w[1].0)
    }

    /// Whether at most one bucket is multivalued (the paper's *biased*
    /// shape, Definition 2.2, without the end-placement requirement).
    pub fn is_biased_shape(&self) -> bool {
        self.buckets.iter().filter(|b| !b.is_univalued()).count() <= 1
    }

    /// Whether the histogram is end-biased (Definition 2.2): biased, and
    /// every univalued bucket holds frequencies at or beyond the extremes
    /// of the multivalued bucket.
    pub fn is_end_biased(&self) -> bool {
        if !self.is_biased_shape() {
            return false;
        }
        let multi = self.buckets.iter().find(|b| !b.is_univalued());
        match multi {
            // All buckets univalued: vacuously end-biased (every bucket
            // is at an "end" of an empty middle).
            None => true,
            Some(m) => self
                .buckets
                .iter()
                .filter(|b| b.is_univalued())
                .all(|b| b.max_freq() <= m.min_freq() || b.min_freq() >= m.max_freq()),
        }
    }

    /// The most specific class of this histogram.
    pub fn class(&self) -> HistogramClass {
        if self.num_buckets() == 1 {
            return HistogramClass::Trivial;
        }
        let serial = self.is_serial();
        let biased = self.is_biased_shape();
        if serial && biased && self.is_end_biased() {
            HistogramClass::EndBiased
        } else if serial {
            HistogramClass::Serial
        } else if biased {
            HistogramClass::Biased
        } else {
            HistogramClass::General
        }
    }

    /// Catalog storage cost in entries, following §4's discussion: every
    /// bucket stores its average, and every value outside the *largest*
    /// bucket must be listed explicitly (values of the largest bucket are
    /// implied by absence).
    pub fn storage_entries(&self) -> usize {
        let largest = self
            .buckets
            .iter()
            .map(|b| b.count() as usize)
            .max()
            .unwrap_or(0);
        self.num_buckets() + self.num_values() - largest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(freqs: &[u64], assignment: &[u32], n: usize) -> Histogram {
        Histogram::from_assignment(freqs, assignment.to_vec(), n).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Histogram::from_assignment(&[], vec![], 1),
            Err(HistError::EmptyFrequencies)
        ));
        assert!(matches!(
            Histogram::from_assignment(&[1, 2], vec![0], 1),
            Err(HistError::InvalidAssignment(_))
        ));
        assert!(matches!(
            Histogram::from_assignment(&[1, 2], vec![0, 2], 2),
            Err(HistError::InvalidAssignment(_))
        ));
        assert!(matches!(
            Histogram::from_assignment(&[1, 2], vec![0, 0], 2),
            Err(HistError::InvalidAssignment(_))
        ));
        assert!(matches!(
            Histogram::from_assignment(&[1, 2], vec![0, 0], 0),
            Err(HistError::InvalidBucketCount { .. })
        ));
        assert!(matches!(
            Histogram::from_assignment(&[1], vec![0], 2),
            Err(HistError::InvalidBucketCount { .. })
        ));
    }

    #[test]
    fn approx_frequencies_average_within_buckets() {
        // values 0,1 in bucket 0 (freqs 10, 20), value 2 alone (freq 5).
        let h = hist(&[10, 20, 5], &[0, 0, 1], 2);
        assert_eq!(
            h.approx_frequencies(RoundingMode::Exact),
            vec![15.0, 15.0, 5.0]
        );
        assert_eq!(h.approx_frequency(2, RoundingMode::Exact), 5.0);
    }

    #[test]
    fn rounded_mode_rounds_bucket_averages() {
        let h = hist(&[1, 2], &[0, 0], 1);
        assert_eq!(
            h.approx_frequencies(RoundingMode::PaperRounded),
            vec![2.0, 2.0]
        );
        assert_eq!(h.approx_frequencies(RoundingMode::Exact), vec![1.5, 1.5]);
    }

    #[test]
    fn proposition_3_1_identities() {
        let freqs = [7u64, 7, 3, 1, 12];
        let h = hist(&freqs, &[0, 0, 1, 1, 2], 3);
        // S from buckets == Σ f².
        let s: u128 = freqs.iter().map(|&f| (f as u128) * (f as u128)).sum();
        assert_eq!(h.exact_self_join_size(), s);
        // S − S' == Σ PᵢVᵢ.
        let direct = s as f64 - h.approx_self_join_size(RoundingMode::Exact);
        assert!((direct - h.self_join_error()).abs() < 1e-9);
        // And equals the error computed from the approximated vector.
        let approx: f64 = h
            .approx_frequencies(RoundingMode::Exact)
            .iter()
            .map(|a| a * a)
            .sum();
        assert!((approx - h.approx_self_join_size(RoundingMode::Exact)).abs() < 1e-9);
    }

    #[test]
    fn self_join_error_nonnegative() {
        let h = hist(&[1, 100, 50, 2], &[0, 1, 0, 1], 2);
        assert!(h.self_join_error() >= 0.0);
    }

    #[test]
    fn serial_detection() {
        // Buckets {1,2} and {8,9}: serial.
        assert!(hist(&[1, 8, 2, 9], &[0, 1, 0, 1], 2).is_serial());
        // Buckets {1,9} and {2,8}: interleaved, not serial.
        assert!(!hist(&[1, 8, 2, 9], &[0, 0, 1, 1], 2).is_serial());
        // Shared boundary value is fine.
        assert!(hist(&[1, 2, 2, 9], &[0, 0, 1, 1], 2).is_serial());
        // Single bucket is trivially serial.
        assert!(hist(&[3, 1, 4], &[0, 0, 0], 1).is_serial());
    }

    #[test]
    fn end_biased_detection() {
        // Highest (9) and lowest (1) singled out, middle together.
        let eb = hist(&[9, 4, 5, 1], &[0, 1, 1, 2], 3);
        assert!(eb.is_end_biased());
        assert_eq!(eb.class(), HistogramClass::EndBiased);
        // A middle frequency singled out: biased but not end-biased.
        let b = hist(&[9, 4, 5, 1], &[0, 1, 0, 0], 2);
        assert!(b.is_biased_shape());
        assert!(!b.is_end_biased());
        assert_eq!(b.class(), HistogramClass::Biased);
    }

    #[test]
    fn class_taxonomy() {
        assert_eq!(hist(&[5, 1], &[0, 0], 1).class(), HistogramClass::Trivial);
        // Two multivalued serial buckets.
        assert_eq!(
            hist(&[1, 2, 8, 9], &[0, 0, 1, 1], 2).class(),
            HistogramClass::Serial
        );
        // Interleaved multivalued buckets: general.
        assert_eq!(
            hist(&[1, 8, 2, 9], &[0, 0, 1, 1], 2).class(),
            HistogramClass::General
        );
        // All-univalued buckets classify as end-biased (serial).
        assert_eq!(hist(&[3, 7], &[0, 1], 2).class(), HistogramClass::EndBiased);
    }

    #[test]
    fn attach_bounds_records_per_bucket_spans() {
        // Values 2,5,9 with freqs 10,20,5; bucket 0 = {2,5}, bucket 1 = {9}.
        let mut h = hist(&[10, 20, 5], &[0, 0, 1], 2);
        assert!(h.bounds().is_empty());
        h.attach_bounds(&[2, 5, 9]).unwrap();
        assert_eq!(
            h.bounds(),
            &[
                ValueBounds {
                    lo: 2,
                    hi: 6,
                    distinct: 2
                },
                ValueBounds {
                    lo: 9,
                    hi: 10,
                    distinct: 1
                },
            ]
        );
        assert!(h.bucket_bounds(1).unwrap().is_singleton());
        assert!(h.bounds().iter().all(ValueBounds::is_well_formed));
    }

    #[test]
    fn attach_bounds_validates_domain() {
        let mut h = hist(&[10, 20, 5], &[0, 0, 1], 2);
        // Wrong arity.
        assert!(matches!(
            h.attach_bounds(&[1, 2]),
            Err(HistError::InvalidAssignment(_))
        ));
        // Not strictly ascending.
        assert!(matches!(
            h.attach_bounds(&[1, 1, 2]),
            Err(HistError::InvalidAssignment(_))
        ));
        assert!(matches!(
            h.attach_bounds(&[3, 2, 1]),
            Err(HistError::InvalidAssignment(_))
        ));
        assert!(h.bounds().is_empty());
    }

    #[test]
    fn bounds_participate_in_equality() {
        let mut h = hist(&[10, 20, 5], &[0, 0, 1], 2);
        let bare = h.clone();
        h.attach_bounds(&[2, 5, 9]).unwrap();
        assert_ne!(h, bare);
        assert_eq!(h.clone(), h);
    }

    #[test]
    fn storage_cost_excludes_largest_bucket() {
        // 5 values, buckets of sizes 3 and 2 → 2 averages + 2 listed values.
        let h = hist(&[1, 1, 1, 9, 9], &[0, 0, 0, 1, 1], 2);
        assert_eq!(h.storage_entries(), 2 + 2);
        // Trivial histogram stores only the average.
        let t = hist(&[1, 2, 3], &[0, 0, 0], 1);
        assert_eq!(t.storage_entries(), 1);
    }
}
