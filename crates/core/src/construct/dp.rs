//! Dynamic-programming v-optimal serial construction.
//!
//! An `O(M²β)` alternative to the exhaustive Algorithm V-OptHist that
//! computes the *same* optimum: minimising `Σᵢ PᵢVᵢ` over contiguous
//! partitions of the sorted frequencies is an interval-partitioning
//! problem with an additive per-interval cost (each run's SSE), which is
//! exactly the shape classic v-optimal DP solves. This is an engineering
//! extension beyond the 1995 paper (later formalised by Jagadish et al.,
//! VLDB 1998); property tests assert it always matches the exhaustive
//! search on small inputs.

use super::{OptResult, PrefixSums};
use crate::error::{HistError, Result};
use crate::partition::SortedFreqs;

/// Finds the v-optimal serial histogram with exactly `buckets` buckets in
/// `O(M²·buckets)` time and `O(M·buckets)` space.
///
/// Produces the same error as [`super::v_opt_serial`]; cut placement may
/// differ between equally-optimal partitions.
pub fn v_opt_serial_dp(freqs: &[u64], buckets: usize) -> Result<OptResult> {
    let m = freqs.len();
    if m == 0 {
        return Err(HistError::EmptyFrequencies);
    }
    if buckets == 0 || buckets > m {
        return Err(HistError::InvalidBucketCount {
            requested: buckets,
            values: m,
        });
    }
    let sorted = SortedFreqs::new(freqs);
    let prefix = PrefixSums::new(&sorted.sorted);

    // cost[k][i] = min error of covering the first i sorted frequencies
    // with k+1 buckets; parent[k][i] = start of the last bucket.
    // Rows are rolled: we only keep the previous k layer.
    let mut prev = vec![0.0f64; m + 1];
    for (i, slot) in prev.iter_mut().enumerate() {
        *slot = prefix.range_sse(0, i);
    }
    // parents[k][i] for k >= 1 (k = number of cuts so far).
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(buckets.saturating_sub(1));

    for k in 1..buckets {
        let mut cur = vec![f64::INFINITY; m + 1];
        let mut parent = vec![0usize; m + 1];
        // With k+1 buckets we need at least k+1 elements.
        #[allow(clippy::needless_range_loop)] // j indexes prev and prefix together
        for i in (k + 1)..=m {
            let mut best = f64::INFINITY;
            let mut best_j = k;
            // Last bucket spans j..i; the first k buckets cover 0..j and
            // need at least k elements.
            for j in k..i {
                let cand = prev[j] + prefix.range_sse(j, i);
                if cand < best {
                    best = cand;
                    best_j = j;
                }
            }
            cur[i] = best;
            parent[i] = best_j;
        }
        parents.push(parent);
        prev = cur;
    }

    let error = prev[m];
    // Reconstruct cut positions from the parent chains.
    let mut cuts = Vec::with_capacity(buckets - 1);
    let mut end = m;
    for k in (0..buckets - 1).rev() {
        let j = parents[k][end];
        cuts.push(j);
        end = j;
    }
    cuts.reverse();
    let histogram = sorted.histogram_from_cuts(freqs, &cuts)?;
    Ok(OptResult { histogram, error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::v_opt_serial;

    #[test]
    fn matches_exhaustive_on_fixed_cases() {
        let cases: Vec<(Vec<u64>, usize)> = vec![
            (vec![3, 1, 4, 1, 5, 9, 2, 6], 3),
            (vec![10, 10, 10, 10], 2),
            (vec![1, 100], 2),
            (vec![7], 1),
            (vec![5, 5, 5, 1, 1, 1, 9, 9, 9], 3),
            (vec![0, 0, 0, 50], 2),
        ];
        for (freqs, beta) in cases {
            let dp = v_opt_serial_dp(&freqs, beta).unwrap();
            let ex = v_opt_serial(&freqs, beta).unwrap();
            assert!(
                (dp.error - ex.error).abs() < 1e-6,
                "freqs={freqs:?} beta={beta}: dp {} vs exhaustive {}",
                dp.error,
                ex.error
            );
            assert!(
                (dp.histogram.self_join_error() - dp.error).abs() < 1e-6,
                "reported error disagrees with histogram"
            );
        }
    }

    #[test]
    fn exact_when_buckets_equal_values() {
        let freqs = [4u64, 8, 15, 16, 23, 42];
        let dp = v_opt_serial_dp(&freqs, 6).unwrap();
        assert_eq!(dp.error, 0.0);
        assert_eq!(dp.histogram.num_buckets(), 6);
    }

    #[test]
    fn result_is_serial_with_exact_bucket_count() {
        let freqs = [12u64, 7, 7, 3, 99, 1, 40, 40];
        for beta in 1..=freqs.len() {
            let dp = v_opt_serial_dp(&freqs, beta).unwrap();
            assert!(dp.histogram.is_serial(), "beta={beta}");
            assert_eq!(dp.histogram.num_buckets(), beta);
        }
    }

    #[test]
    fn invalid_inputs() {
        assert!(v_opt_serial_dp(&[], 1).is_err());
        assert!(v_opt_serial_dp(&[1], 0).is_err());
        assert!(v_opt_serial_dp(&[1], 2).is_err());
    }

    #[test]
    fn handles_larger_inputs_quickly() {
        // Exhaustive would need C(499, 9) ≈ 10^18 partitions; the DP is
        // instant — the practical payoff documented in DESIGN.md.
        let freqs: Vec<u64> = (0..500).map(|i| (i * i * 7 + 13) % 1000).collect();
        let dp = v_opt_serial_dp(&freqs, 10).unwrap();
        assert!(dp.error.is_finite());
        assert!(dp.histogram.is_serial());
    }
}
