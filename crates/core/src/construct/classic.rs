//! The classical histograms the paper compares against: trivial,
//! equi-width, and equi-depth (§2.3, §5.1).
//!
//! Equi-width and equi-depth bucket by *value order* (the natural order
//! of the attribute domain, which for this crate is the value-index
//! order), not by frequency order — that is precisely why the paper finds
//! them inferior to serial histograms when value order and frequency
//! order are uncorrelated.

use crate::error::{HistError, Result};
use crate::histogram::Histogram;

/// The trivial histogram: a single bucket, i.e. the uniform-distribution
/// assumption.
pub fn trivial(freqs: &[u64]) -> Result<Histogram> {
    Histogram::from_assignment(freqs, vec![0; freqs.len()], 1.min(freqs.len()))
}

/// An equi-width histogram with `buckets` buckets: the value-index range
/// is split into `buckets` runs of (nearly) equal width.
pub fn equi_width(freqs: &[u64], buckets: usize) -> Result<Histogram> {
    let m = freqs.len();
    if buckets == 0 || buckets > m {
        return Err(HistError::InvalidBucketCount {
            requested: buckets,
            values: m,
        });
    }
    let mut assignment = vec![0u32; m];
    // Distribute the remainder across the first `m % buckets` buckets so
    // all widths differ by at most one.
    let base = m / buckets;
    let extra = m % buckets;
    let mut idx = 0usize;
    for b in 0..buckets {
        let width = base + usize::from(b < extra);
        for _ in 0..width {
            assignment[idx] = b as u32;
            idx += 1;
        }
    }
    Histogram::from_assignment(freqs, assignment, buckets)
}

/// An equi-depth (equi-height) histogram with `buckets` buckets: value
/// indices are walked in order and cut so that each bucket holds (as
/// nearly as possible) `T / buckets` tuples.
///
/// Every bucket is guaranteed non-empty even when a single frequency
/// exceeds the target depth: a cut is also forced whenever the remaining
/// values are only just enough to populate the remaining buckets.
pub fn equi_depth(freqs: &[u64], buckets: usize) -> Result<Histogram> {
    let m = freqs.len();
    if buckets == 0 || buckets > m {
        return Err(HistError::InvalidBucketCount {
            requested: buckets,
            values: m,
        });
    }
    let total: u128 = freqs.iter().map(|&f| f as u128).sum();
    let mut assignment = vec![0u32; m];
    let mut bucket = 0usize;
    let mut cum: u128 = 0;
    for (i, &f) in freqs.iter().enumerate() {
        assignment[i] = bucket as u32;
        cum += f as u128;
        if bucket + 1 == buckets {
            continue; // last bucket absorbs the rest
        }
        let values_left = m - i - 1;
        let buckets_left = buckets - bucket - 1;
        // Cut when the running depth reaches the next quantile boundary,
        // or when we must cut to keep later buckets non-empty.
        let boundary = (bucket as u128 + 1) * total / buckets as u128;
        if cum >= boundary || values_left == buckets_left {
            bucket += 1;
        }
    }
    Histogram::from_assignment(freqs, assignment, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_is_one_bucket() {
        let h = trivial(&[1, 2, 3]).unwrap();
        assert_eq!(h.num_buckets(), 1);
        assert!(trivial(&[]).is_err());
    }

    #[test]
    fn equi_width_splits_value_ranges_evenly() {
        let freqs = [1u64, 2, 3, 4, 5, 6, 7];
        let h = equi_width(&freqs, 3).unwrap();
        // Widths 3, 2, 2.
        assert_eq!(h.assignment(), &[0, 0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn equi_width_exact_division() {
        let h = equi_width(&[1; 6], 3).unwrap();
        assert_eq!(h.assignment(), &[0, 0, 1, 1, 2, 2]);
    }

    #[test]
    fn equi_width_one_bucket_per_value() {
        let h = equi_width(&[5, 6, 7], 3).unwrap();
        assert_eq!(h.assignment(), &[0, 1, 2]);
    }

    #[test]
    fn equi_depth_balances_tuples_not_values() {
        // One huge value then small ones: first bucket should stop at the
        // huge value.
        let freqs = [90u64, 5, 5, 5, 5];
        let h = equi_depth(&freqs, 2).unwrap();
        assert_eq!(h.bucket_of(0), 0);
        assert!((1..5).all(|i| h.bucket_of(i) == 1));
    }

    #[test]
    fn equi_depth_uniform_matches_equi_width() {
        let freqs = [10u64; 12];
        let d = equi_depth(&freqs, 4).unwrap();
        let w = equi_width(&freqs, 4).unwrap();
        assert_eq!(d.assignment(), w.assignment());
    }

    #[test]
    fn equi_depth_never_leaves_empty_buckets() {
        // All the mass up front would starve later buckets without the
        // forced-cut rule.
        let freqs = [100u64, 0, 0, 0];
        let h = equi_depth(&freqs, 4).unwrap();
        assert_eq!(h.num_buckets(), 4);
        assert_eq!(h.assignment(), &[0, 1, 2, 3]);
    }

    #[test]
    fn equi_depth_zero_total() {
        let h = equi_depth(&[0, 0, 0], 2).unwrap();
        assert_eq!(h.num_buckets(), 2);
    }

    #[test]
    fn bucket_count_validation() {
        assert!(equi_width(&[1, 2], 3).is_err());
        assert!(equi_width(&[1, 2], 0).is_err());
        assert!(equi_depth(&[1, 2], 3).is_err());
        assert!(equi_depth(&[1, 2], 0).is_err());
    }
}
