//! MaxDiff histograms: a cheap serial heuristic.
//!
//! The paper surveys "variable-width histograms … where the buckets are
//! chosen based on various criteria" (§1, citing Kooi and others); the
//! gap-based criterion later named *MaxDiff* (Poosala, Ioannidis, Haas &
//! Shekita, VLDB 1996 — the follow-up to this paper) places bucket
//! boundaries at the `β−1` largest differences between adjacent sorted
//! frequencies. It is serial by construction, costs only a sort, and in
//! practice lands between V-OptBiasHist and the true v-optimal serial
//! histogram — a useful third point on the paper's
//! optimality/practicality trade-off curve.

use super::{OptResult, PrefixSums};
use crate::error::{HistError, Result};
use crate::partition::SortedFreqs;

/// Builds the MaxDiff serial histogram with exactly `buckets` buckets:
/// cuts at the `β−1` largest adjacent gaps in the sorted frequency
/// order (ties broken towards lower ranks for determinism).
pub fn max_diff(freqs: &[u64], buckets: usize) -> Result<OptResult> {
    let m = freqs.len();
    if m == 0 {
        return Err(HistError::EmptyFrequencies);
    }
    if buckets == 0 || buckets > m {
        return Err(HistError::InvalidBucketCount {
            requested: buckets,
            values: m,
        });
    }
    let sorted = SortedFreqs::new(freqs);
    // Gap before sorted position i (cut candidates are 1..m).
    let mut gaps: Vec<(u64, usize)> = sorted
        .sorted
        .windows(2)
        .enumerate()
        .map(|(i, w)| (w[1] - w[0], i + 1))
        .collect();
    // Largest gaps first; ties by position.
    gaps.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut cuts: Vec<usize> = gaps
        .into_iter()
        .take(buckets - 1)
        .map(|(_, pos)| pos)
        .collect();
    cuts.sort_unstable();
    let histogram = sorted.histogram_from_cuts(freqs, &cuts)?;
    let error = PrefixSums::new(&sorted.sorted).partition_sse(&cuts);
    Ok(OptResult { histogram, error })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{trivial, v_opt_serial_dp};

    #[test]
    fn cuts_at_the_largest_gaps() {
        // Sorted: 1, 2, 3, 50, 51, 200 — the two biggest gaps are
        // before 50 (47) and before 200 (149).
        let freqs = [50u64, 1, 200, 2, 51, 3];
        let opt = max_diff(&freqs, 3).unwrap();
        let h = &opt.histogram;
        // Clusters {1,2,3}, {50,51}, {200}.
        assert_eq!(h.bucket_of(1), h.bucket_of(3));
        assert_eq!(h.bucket_of(3), h.bucket_of(5));
        assert_eq!(h.bucket_of(0), h.bucket_of(4));
        assert_ne!(h.bucket_of(0), h.bucket_of(2));
        assert!(h.is_serial());
    }

    #[test]
    fn error_between_vopt_and_trivial() {
        let freqs = [100u64, 99, 95, 50, 48, 10, 9, 8, 1, 1];
        for beta in 2..=5 {
            let md = max_diff(&freqs, beta).unwrap();
            let vopt = v_opt_serial_dp(&freqs, beta).unwrap();
            let triv = trivial(&freqs).unwrap().self_join_error();
            assert!(vopt.error <= md.error + 1e-9, "beta={beta}");
            assert!(md.error <= triv + 1e-9, "beta={beta}");
        }
    }

    #[test]
    fn reported_error_matches_histogram() {
        let freqs = [7u64, 3, 9, 1, 12, 5];
        let opt = max_diff(&freqs, 3).unwrap();
        assert!((opt.error - opt.histogram.self_join_error()).abs() < 1e-9);
    }

    #[test]
    fn exact_with_m_buckets_and_validates() {
        let freqs = [4u64, 2, 9];
        assert_eq!(max_diff(&freqs, 3).unwrap().error, 0.0);
        assert!(max_diff(&[], 1).is_err());
        assert!(max_diff(&freqs, 0).is_err());
        assert!(max_diff(&freqs, 4).is_err());
    }

    #[test]
    fn equal_frequencies_are_never_split_before_unequal() {
        // All gaps zero except one: the single cut must land there.
        let freqs = [5u64, 5, 5, 20, 20];
        let opt = max_diff(&freqs, 2).unwrap();
        let h = &opt.histogram;
        assert_eq!(h.bucket_of(0), h.bucket_of(2));
        assert_eq!(h.bucket_of(3), h.bucket_of(4));
        assert_ne!(h.bucket_of(0), h.bucket_of(3));
        assert_eq!(opt.error, 0.0);
    }
}
