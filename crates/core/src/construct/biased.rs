//! General biased histograms (Definition 2.2 without the end-placement
//! requirement): `β − 1` singleton univalued buckets holding *any*
//! frequencies, plus one multivalued bucket.
//!
//! The §3.1 arrangement study enumerates all biased histograms of two
//! joined relations to find, per arrangement, the optimal biased pair —
//! and then asks how often that pair is end-biased. [`BiasedChoices`]
//! provides the enumeration; [`biased_histogram`] builds one member.

use crate::error::{HistError, Result};
use crate::histogram::Histogram;

/// Builds the biased histogram whose singleton buckets are exactly the
/// value indices in `singletons` (which must be distinct and in range);
/// all remaining values share one multivalued bucket.
///
/// Bucket 0 is the multivalued bucket when it is non-empty; singleton
/// buckets follow in the order given.
pub fn biased_histogram(freqs: &[u64], singletons: &[usize]) -> Result<Histogram> {
    let m = freqs.len();
    if m == 0 {
        return Err(HistError::EmptyFrequencies);
    }
    if singletons.len() > m {
        return Err(HistError::InvalidBiasSplit(format!(
            "{} singleton buckets exceed {m} values",
            singletons.len()
        )));
    }
    let mid = m - singletons.len();
    let num_buckets = singletons.len() + usize::from(mid > 0);
    let offset = u32::from(mid > 0); // singleton ids start after the pool
    let mut assignment = vec![u32::MAX; m];
    for (k, &idx) in singletons.iter().enumerate() {
        if idx >= m {
            return Err(HistError::InvalidBiasSplit(format!(
                "singleton index {idx} out of range 0..{m}"
            )));
        }
        if assignment[idx] != u32::MAX {
            return Err(HistError::InvalidBiasSplit(format!(
                "value {idx} named twice as a singleton"
            )));
        }
        assignment[idx] = offset + k as u32;
    }
    for slot in assignment.iter_mut() {
        if *slot == u32::MAX {
            *slot = 0;
        }
    }
    Histogram::from_assignment(freqs, assignment, num_buckets)
}

/// Enumerates every biased histogram with exactly `buckets` buckets over
/// `freqs`: all `C(M, β−1)` choices of singleton value indices.
///
/// Cost grows combinatorially; intended for the small domains of the
/// §3.1 study.
pub struct BiasedChoices<'a> {
    freqs: &'a [u64],
    combo: Vec<usize>,
    m: usize,
    done: bool,
}

impl<'a> BiasedChoices<'a> {
    /// Starts the enumeration.
    pub fn new(freqs: &'a [u64], buckets: usize) -> Result<Self> {
        let m = freqs.len();
        if m == 0 {
            return Err(HistError::EmptyFrequencies);
        }
        if buckets == 0 || buckets > m {
            return Err(HistError::InvalidBucketCount {
                requested: buckets,
                values: m,
            });
        }
        Ok(Self {
            freqs,
            combo: (0..buckets - 1).collect(),
            m,
            done: false,
        })
    }

    fn advance(&mut self) {
        let k = self.combo.len();
        if k == 0 {
            self.done = true;
            return;
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return;
            }
            i -= 1;
            if self.combo[i] < self.m - (k - i) {
                self.combo[i] += 1;
                for j in i + 1..k {
                    self.combo[j] = self.combo[j - 1] + 1;
                }
                return;
            }
        }
    }
}

impl Iterator for BiasedChoices<'_> {
    type Item = Histogram;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let hist = biased_histogram(self.freqs, &self.combo.clone()).ok();
        self.advance();
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::v_opt_end_biased;

    #[test]
    fn biased_histogram_places_singletons() {
        let freqs = [10u64, 20, 30, 40];
        let h = biased_histogram(&freqs, &[1, 3]).unwrap();
        assert_eq!(h.num_buckets(), 3);
        assert!(h.is_biased_shape());
        assert_eq!(h.bucket(h.bucket_of(1) as usize).count(), 1);
        assert_eq!(h.bucket(h.bucket_of(3) as usize).count(), 1);
        assert_eq!(h.bucket_of(0), h.bucket_of(2));
    }

    #[test]
    fn all_values_singled_out_is_exact() {
        let freqs = [5u64, 6, 7];
        let h = biased_histogram(&freqs, &[0, 1, 2]).unwrap();
        assert_eq!(h.num_buckets(), 3);
        assert_eq!(h.self_join_error(), 0.0);
    }

    #[test]
    fn rejects_bad_singletons() {
        assert!(biased_histogram(&[1, 2], &[0, 0]).is_err());
        assert!(biased_histogram(&[1, 2], &[5]).is_err());
        assert!(biased_histogram(&[1, 2], &[0, 1, 0]).is_err());
        assert!(biased_histogram(&[], &[]).is_err());
    }

    #[test]
    fn enumeration_counts_binomial() {
        let freqs = [1u64, 2, 3, 4, 5];
        // β = 3 → C(5, 2) = 10 histograms.
        assert_eq!(BiasedChoices::new(&freqs, 3).unwrap().count(), 10);
        // β = 1 → only the trivial histogram.
        assert_eq!(BiasedChoices::new(&freqs, 1).unwrap().count(), 1);
    }

    #[test]
    fn every_enumerated_histogram_is_biased() {
        let freqs = [9u64, 9, 1, 4];
        for h in BiasedChoices::new(&freqs, 3).unwrap() {
            assert!(h.is_biased_shape());
            assert_eq!(h.num_buckets(), 3);
        }
    }

    #[test]
    fn best_biased_for_self_join_is_end_biased() {
        // Corollary 3.1: when the result size is maximised (self-join),
        // the optimal biased histogram is end-biased. Verify by brute
        // force against the fast algorithm.
        let freqs = [50u64, 3, 12, 7, 90, 8];
        for beta in 2..=4 {
            let brute = BiasedChoices::new(&freqs, beta)
                .unwrap()
                .map(|h| h.self_join_error())
                .fold(f64::INFINITY, f64::min);
            let fast = v_opt_end_biased(&freqs, beta).unwrap().error;
            assert!(
                (brute - fast).abs() < 1e-9,
                "beta={beta}: brute {brute} vs end-biased {fast}"
            );
        }
    }
}
