//! End-biased histograms (Definition 2.2) and Algorithm V-OptBiasHist
//! (§4.2, Theorem 4.2).
//!
//! An end-biased histogram with `β` buckets keeps the `β₁` highest and
//! `β₂` lowest frequencies in singleton (univalued) buckets, with
//! `β₁ + β₂ = β − 1`, and pools everything else into one multivalued
//! bucket. Because univalued buckets carry zero variance, the v-optimal
//! end-biased histogram is the split whose multivalued bucket has the
//! least variance (formula (3)) — found in near-linear time.

use super::{OptResult, PrefixSums};
use crate::error::{HistError, Result};
use crate::histogram::Histogram;
use crate::partition::SortedFreqs;

/// Builds the end-biased histogram that singles out the `high` highest
/// and `low` lowest frequencies (ties broken by value index, stably).
///
/// The bucket count is `high + low + 1` when any values remain for the
/// multivalued bucket, else `high + low`.
pub fn end_biased(freqs: &[u64], high: usize, low: usize) -> Result<Histogram> {
    let m = freqs.len();
    if m == 0 {
        return Err(HistError::EmptyFrequencies);
    }
    if high + low > m {
        return Err(HistError::InvalidBiasSplit(format!(
            "{high} high + {low} low singleton buckets exceed {m} values"
        )));
    }
    let sorted = SortedFreqs::new(freqs);
    let mid = m - high - low;
    let num_buckets = high + low + usize::from(mid > 0);
    let mut assignment = vec![0u32; m];
    let mut bucket = 0u32;
    // Lowest `low` ranks: singleton buckets.
    for rank in 0..low {
        assignment[sorted.order[rank]] = bucket;
        bucket += 1;
    }
    // Middle ranks: one multivalued bucket (if non-empty).
    if mid > 0 {
        for rank in low..low + mid {
            assignment[sorted.order[rank]] = bucket;
        }
        bucket += 1;
    }
    // Highest `high` ranks: singleton buckets.
    for rank in low + mid..m {
        assignment[sorted.order[rank]] = bucket;
        bucket += 1;
    }
    Histogram::from_assignment(freqs, assignment, num_buckets)
}

/// Algorithm V-OptBiasHist: the v-optimal end-biased histogram with
/// exactly `buckets` buckets.
///
/// Tries every split `β₁ + β₂ = β − 1` of singleton buckets between the
/// high and low ends and keeps the one whose multivalued bucket has the
/// smallest SSE. With the sort amortised this is `O(M log M + β)`; the
/// paper reaches `O(M + (β−1) log M)` with a heap instead of a full sort,
/// an implementation detail that does not change which histogram wins.
pub fn v_opt_end_biased(freqs: &[u64], buckets: usize) -> Result<OptResult> {
    let m = freqs.len();
    if m == 0 {
        return Err(HistError::EmptyFrequencies);
    }
    if buckets == 0 || buckets > m {
        return Err(HistError::InvalidBucketCount {
            requested: buckets,
            values: m,
        });
    }
    let sorted = SortedFreqs::new(freqs);
    let prefix = PrefixSums::new(&sorted.sorted);
    let singles = buckets - 1;

    let mut best = f64::INFINITY;
    let mut best_low = 0usize;
    for low in 0..=singles {
        let high = singles - low;
        // Multivalued bucket spans sorted ranks low .. m - high.
        let err = prefix.range_sse(low, m - high);
        if err < best - 1e-12 {
            best = err;
            best_low = low;
        }
    }
    let histogram = end_biased(freqs, singles - best_low, best_low)?;
    Ok(OptResult {
        histogram,
        error: best,
    })
}

/// Enumerates every end-biased histogram with exactly `buckets` buckets
/// (all `β` splits of the `β − 1` singletons between high and low ends).
/// Used by the §3.1 arrangement study.
pub struct EndBiasedChoices<'a> {
    freqs: &'a [u64],
    singles: usize,
    next_low: usize,
    done: bool,
}

impl<'a> EndBiasedChoices<'a> {
    /// Starts the enumeration.
    pub fn new(freqs: &'a [u64], buckets: usize) -> Result<Self> {
        if freqs.is_empty() {
            return Err(HistError::EmptyFrequencies);
        }
        if buckets == 0 || buckets > freqs.len() {
            return Err(HistError::InvalidBucketCount {
                requested: buckets,
                values: freqs.len(),
            });
        }
        Ok(Self {
            freqs,
            singles: buckets - 1,
            next_low: 0,
            done: false,
        })
    }
}

impl Iterator for EndBiasedChoices<'_> {
    type Item = Histogram;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.next_low > self.singles {
            return None;
        }
        let low = self.next_low;
        self.next_low += 1;
        if self.next_low > self.singles {
            self.done = true;
        }
        end_biased(self.freqs, self.singles - low, low).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_biased_singles_out_extremes() {
        let freqs = [50u64, 3, 7, 5, 90];
        let h = end_biased(&freqs, 1, 1).unwrap();
        assert_eq!(h.num_buckets(), 3);
        assert!(h.is_end_biased());
        // 90 (idx 4) and 3 (idx 1) are alone.
        assert_eq!(h.bucket(h.bucket_of(4) as usize).count(), 1);
        assert_eq!(h.bucket(h.bucket_of(1) as usize).count(), 1);
        // 50, 7, 5 share a bucket.
        assert_eq!(h.bucket_of(0), h.bucket_of(2));
        assert_eq!(h.bucket_of(2), h.bucket_of(3));
    }

    #[test]
    fn end_biased_all_singletons() {
        let freqs = [4u64, 2, 9];
        let h = end_biased(&freqs, 2, 1).unwrap();
        assert_eq!(h.num_buckets(), 3);
        assert_eq!(h.self_join_error(), 0.0);
    }

    #[test]
    fn end_biased_rejects_overfull_split() {
        assert!(end_biased(&[1, 2], 2, 1).is_err());
        assert!(end_biased(&[], 0, 0).is_err());
    }

    #[test]
    fn v_opt_end_biased_prefers_high_outliers_under_zipf_shape() {
        // One dominant frequency: the best 2-bucket end-biased histogram
        // singles out the top value.
        let freqs = [100u64, 10, 9, 8, 10];
        let opt = v_opt_end_biased(&freqs, 2).unwrap();
        let h = &opt.histogram;
        assert_eq!(h.bucket(h.bucket_of(0) as usize).count(), 1);
        assert!(opt.error < 10.0);
    }

    #[test]
    fn v_opt_end_biased_prefers_low_outliers_when_inverted() {
        // Reverse-Zipf shape: one tiny frequency among large ones.
        let freqs = [100u64, 99, 98, 1, 97];
        let opt = v_opt_end_biased(&freqs, 2).unwrap();
        let h = &opt.histogram;
        assert_eq!(h.bucket(h.bucket_of(3) as usize).count(), 1);
    }

    #[test]
    fn v_opt_matches_enumeration() {
        let freqs = [13u64, 2, 8, 21, 4, 4, 30, 1, 9];
        for beta in 1..=6 {
            let opt = v_opt_end_biased(&freqs, beta).unwrap();
            let brute = EndBiasedChoices::new(&freqs, beta)
                .unwrap()
                .map(|h| h.self_join_error())
                .fold(f64::INFINITY, f64::min);
            assert!(
                (opt.error - brute).abs() < 1e-9,
                "beta={beta}: fast {} vs brute {brute}",
                opt.error
            );
        }
    }

    #[test]
    fn error_equals_histogram_error() {
        let freqs = [5u64, 25, 125, 1, 1, 1, 625];
        let opt = v_opt_end_biased(&freqs, 3).unwrap();
        assert!((opt.error - opt.histogram.self_join_error()).abs() < 1e-9);
    }

    #[test]
    fn result_is_end_biased_class() {
        let freqs = [7u64, 7, 2, 91, 30, 12];
        let opt = v_opt_end_biased(&freqs, 4).unwrap();
        assert!(opt.histogram.is_end_biased());
        assert!(opt.histogram.is_serial());
    }

    #[test]
    fn enumeration_yields_beta_histograms() {
        let freqs = [3u64, 1, 4, 1, 5];
        let all: Vec<_> = EndBiasedChoices::new(&freqs, 3).unwrap().collect();
        assert_eq!(all.len(), 3); // (high,low) ∈ {(2,0),(1,1),(0,2)}
        for h in &all {
            assert!(h.is_end_biased());
        }
    }

    #[test]
    fn one_bucket_is_trivial() {
        let freqs = [3u64, 9];
        let opt = v_opt_end_biased(&freqs, 1).unwrap();
        assert_eq!(opt.histogram.num_buckets(), 1);
        assert!((opt.error - opt.histogram.self_join_error()).abs() < 1e-9);
    }
}
