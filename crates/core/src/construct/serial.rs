//! Algorithm V-OptHist (§4.1, Theorem 4.1): exhaustive search for the
//! v-optimal serial histogram.
//!
//! The frequency set is sorted and partitioned into `β` contiguous runs
//! in all `C(M−1, β−1)` possible ways; each partition's self-join error
//! (formula (3)) is evaluated, and the minimum wins. The cost is
//! `O(M log M + C(M−1, β−1)·β)` — exponential in `β`, which is exactly
//! the impracticality the paper's end-biased histograms address.

use super::{OptResult, PrefixSums};
use crate::error::{HistError, Result};
use crate::histogram::Histogram;
use crate::partition::{ContiguousPartitions, SortedFreqs};

/// Finds the v-optimal serial histogram with exactly `buckets` buckets by
/// exhaustive enumeration (Algorithm V-OptHist).
///
/// By Theorem 3.3 the result is v-optimal for *any* query joining this
/// relation on the histogram's attribute(s), independent of the other
/// relations' contents.
pub fn v_opt_serial(freqs: &[u64], buckets: usize) -> Result<OptResult> {
    v_opt_serial_checked(freqs, buckets, u128::MAX)
}

/// Like [`v_opt_serial`] but refuses to start when the number of
/// partitions to enumerate exceeds `max_partitions` — a guard for
/// callers that must stay interactive. Algorithm V-OptBiasHist
/// ([`super::v_opt_end_biased`]) is the practical alternative.
pub fn v_opt_serial_checked(
    freqs: &[u64],
    buckets: usize,
    max_partitions: u128,
) -> Result<OptResult> {
    let m = freqs.len();
    if m == 0 {
        return Err(HistError::EmptyFrequencies);
    }
    if buckets == 0 || buckets > m {
        return Err(HistError::InvalidBucketCount {
            requested: buckets,
            values: m,
        });
    }
    let work = ContiguousPartitions::count_partitions(m, buckets);
    if work > max_partitions {
        return Err(HistError::InvalidBucketCount {
            requested: buckets,
            values: m,
        });
    }

    let sorted = SortedFreqs::new(freqs);
    let prefix = PrefixSums::new(&sorted.sorted);

    let mut best_error = f64::INFINITY;
    let mut best_cuts: Vec<usize> = Vec::new();
    for cuts in ContiguousPartitions::new(m, buckets)? {
        let error = prefix.partition_sse(&cuts);
        if error < best_error {
            best_error = error;
            best_cuts = cuts;
        }
    }
    let histogram = sorted.histogram_from_cuts(freqs, &best_cuts)?;
    Ok(OptResult {
        histogram,
        error: best_error,
    })
}

/// Builds the serial histogram induced by explicit cut points over the
/// sorted frequency order (used by tests).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn serial_from_cuts(freqs: &[u64], cuts: &[usize]) -> Result<Histogram> {
    SortedFreqs::new(freqs).histogram_from_cuts(freqs, cuts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::RoundingMode;

    #[test]
    fn one_bucket_equals_trivial_error() {
        let freqs = [3u64, 1, 4, 1, 5];
        let opt = v_opt_serial(&freqs, 1).unwrap();
        let t = crate::construct::trivial(&freqs).unwrap();
        assert!((opt.error - t.self_join_error()).abs() < 1e-9);
    }

    #[test]
    fn m_buckets_is_exact() {
        let freqs = [3u64, 1, 4, 1, 5];
        let opt = v_opt_serial(&freqs, 5).unwrap();
        assert_eq!(opt.error, 0.0);
        assert_eq!(
            opt.histogram.approx_self_join_size(RoundingMode::Exact),
            freqs.iter().map(|&f| (f * f) as f64).sum::<f64>()
        );
    }

    #[test]
    fn optimum_beats_every_other_serial_histogram() {
        let freqs = [10u64, 2, 7, 7, 1, 30];
        let opt = v_opt_serial(&freqs, 3).unwrap();
        for cuts in ContiguousPartitions::new(freqs.len(), 3).unwrap() {
            let h = serial_from_cuts(&freqs, &cuts).unwrap();
            assert!(
                opt.error <= h.self_join_error() + 1e-9,
                "cuts {cuts:?} beat the claimed optimum"
            );
        }
    }

    #[test]
    fn groups_similar_frequencies() {
        // Two tight clusters: the 2-bucket optimum must split them.
        let freqs = [100u64, 99, 101, 5, 4, 6];
        let opt = v_opt_serial(&freqs, 2).unwrap();
        let h = &opt.histogram;
        assert_eq!(h.bucket_of(0), h.bucket_of(1));
        assert_eq!(h.bucket_of(1), h.bucket_of(2));
        assert_eq!(h.bucket_of(3), h.bucket_of(4));
        assert_eq!(h.bucket_of(4), h.bucket_of(5));
        assert_ne!(h.bucket_of(0), h.bucket_of(3));
    }

    #[test]
    fn reported_error_matches_histogram_error() {
        let freqs = [9u64, 1, 8, 2, 7, 3];
        for beta in 1..=4 {
            let opt = v_opt_serial(&freqs, beta).unwrap();
            assert!(
                (opt.error - opt.histogram.self_join_error()).abs() < 1e-9,
                "beta={beta}"
            );
        }
    }

    #[test]
    fn result_is_serial() {
        let freqs = [5u64, 17, 2, 9, 9, 40, 1];
        let opt = v_opt_serial(&freqs, 3).unwrap();
        assert!(opt.histogram.is_serial());
    }

    #[test]
    fn error_monotone_in_buckets() {
        let freqs = [13u64, 2, 8, 21, 4, 4, 30, 1];
        let mut prev = f64::INFINITY;
        for beta in 1..=freqs.len() {
            let e = v_opt_serial(&freqs, beta).unwrap().error;
            assert!(e <= prev + 1e-9, "error increased at beta={beta}");
            prev = e;
        }
    }

    #[test]
    fn work_limit_enforced() {
        let freqs: Vec<u64> = (0..40).collect();
        assert!(matches!(
            v_opt_serial_checked(&freqs, 10, 1_000),
            Err(HistError::InvalidBucketCount { .. })
        ));
        assert!(v_opt_serial_checked(&freqs, 2, 1_000).is_ok());
    }

    #[test]
    fn invalid_inputs() {
        assert!(v_opt_serial(&[], 1).is_err());
        assert!(v_opt_serial(&[1, 2], 0).is_err());
        assert!(v_opt_serial(&[1, 2], 3).is_err());
    }
}
