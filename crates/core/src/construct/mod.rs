//! Histogram construction algorithms.
//!
//! * [`trivial`], [`equi_width`], [`equi_depth`] — the classical
//!   histograms the paper compares against (§2.3, §5.1).
//! * [`v_opt_serial`] — Algorithm V-OptHist (Theorem 4.1): exhaustive
//!   search for the v-optimal serial histogram.
//! * [`v_opt_serial_dp`] — an `O(M²β)` dynamic program computing the same
//!   optimum (an engineering extension; equivalence is property-tested).
//! * [`end_biased`], [`v_opt_end_biased`] — Definition 2.2 and Algorithm
//!   V-OptBiasHist (Theorem 4.2).
//! * [`max_diff`] — the gap-based serial heuristic of the cited
//!   variable-width family (later named MaxDiff).
//! * [`BiasedChoices`] — enumeration of general biased histograms, used
//!   by the §3.1 arrangement study.
//!
//! All constructors take the per-value frequency slice (`freqs[i]` is the
//! frequency of value index `i`) and return a [`Histogram`] mapping those
//! same indices to buckets.

mod biased;
mod classic;
mod dp;
mod end_biased;
mod max_diff;
mod serial;

pub use biased::{biased_histogram, BiasedChoices};
pub use classic::{equi_depth, equi_width, trivial};
pub use dp::v_opt_serial_dp;
pub use end_biased::{end_biased, v_opt_end_biased, EndBiasedChoices};
pub use max_diff::max_diff;
pub use serial::{v_opt_serial, v_opt_serial_checked};

use crate::histogram::Histogram;

/// RAII construction timer: opens a span named after the histogram
/// class and, on drop, records the wall time into the per-class
/// latency histogram `construction_seconds{class="<class>"}`. Inert
/// when recording is disabled.
///
/// Timed once per build at the [`crate::registry`] dispatch site (the
/// raw constructors below are untimed, so direct calls in tests and
/// ground-truth comparisons stay out of the metrics).
pub(crate) struct ConstructionTimer {
    inner: Option<(obs::SpanGuard, &'static str)>,
}

pub(crate) fn construction_timer(class: &'static str) -> ConstructionTimer {
    if !obs::enabled() {
        return ConstructionTimer { inner: None };
    }
    ConstructionTimer {
        inner: Some((obs::span(class), class)),
    }
}

impl Drop for ConstructionTimer {
    fn drop(&mut self) {
        if let Some((span, class)) = self.inner.take() {
            let elapsed = span.finish();
            obs::histogram(&obs::labeled("construction_seconds", "class", class)).observe(elapsed);
        }
    }
}

/// Prefix sums of frequencies and squared frequencies over a sorted
/// frequency slice; lets any contiguous run's sum / SSE be read in O(1).
///
/// This is the shared per-bucket mean/SSE kernel: every optimality
/// search in this module, the [`crate::registry`] property checks, and
/// downstream consumers that need formula (3) error terms read from it
/// instead of re-deriving the sums.
#[derive(Debug, Clone)]
pub struct PrefixSums {
    /// `sum[i]` = Σ of the first `i` frequencies.
    sum: Vec<u128>,
    /// `sum_sq[i]` = Σ of the first `i` squared frequencies.
    sum_sq: Vec<u128>,
}

impl PrefixSums {
    /// Builds the prefix tables over `sorted` (ascending frequency order
    /// for the serial constructions, but any order is accepted).
    pub fn new(sorted: &[u64]) -> Self {
        let mut sum = Vec::with_capacity(sorted.len() + 1);
        let mut sum_sq = Vec::with_capacity(sorted.len() + 1);
        sum.push(0);
        sum_sq.push(0);
        let (mut s, mut q) = (0u128, 0u128);
        for &f in sorted {
            s += f as u128;
            q += (f as u128) * (f as u128);
            sum.push(s);
            sum_sq.push(q);
        }
        Self { sum, sum_sq }
    }

    /// Number of frequencies covered.
    pub fn len(&self) -> usize {
        self.sum.len() - 1
    }

    /// Whether the covered frequency slice was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of frequencies in ranks `lo..hi`.
    pub fn range_sum(&self, lo: usize, hi: usize) -> u128 {
        self.sum[hi] - self.sum[lo]
    }

    /// Sum of squared deviations from the mean over ranks `lo..hi` —
    /// the bucket's `Pᵢ·Vᵢ` error contribution (Proposition 3.1).
    pub fn range_sse(&self, lo: usize, hi: usize) -> f64 {
        let n = (hi - lo) as f64;
        if n <= 0.0 {
            return 0.0;
        }
        let s = self.range_sum(lo, hi) as f64;
        let q = (self.sum_sq[hi] - self.sum_sq[lo]) as f64;
        (q - s * s / n).max(0.0)
    }

    /// Self-join error (formula (3)) of the serial histogram whose
    /// buckets are the runs delimited by `cuts` over the full covered
    /// range — Σ of each run's [`PrefixSums::range_sse`]. `cuts` must be
    /// ascending rank positions in `0..len`.
    pub fn partition_sse(&self, cuts: &[usize]) -> f64 {
        let mut error = 0.0;
        let mut lo = 0usize;
        for &cut in cuts {
            error += self.range_sse(lo, cut);
            lo = cut;
        }
        error + self.range_sse(lo, self.len())
    }
}

/// The result of an optimality search: the winning histogram and its
/// self-join error `S − S'` (the v-optimality objective).
#[derive(Debug, Clone)]
pub struct OptResult {
    /// The optimal histogram found.
    pub histogram: Histogram,
    /// Its self-join error (formula (3) of Proposition 3.1).
    pub error: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_read_ranges() {
        let p = PrefixSums::new(&[1, 2, 3, 4]);
        assert_eq!(p.range_sum(0, 4), 10);
        assert_eq!(p.range_sum(1, 3), 5);
        assert_eq!(p.range_sum(2, 2), 0);
        // SSE of [2,3] → mean 2.5 → 0.25 + 0.25
        assert!((p.range_sse(1, 3) - 0.5).abs() < 1e-12);
        assert_eq!(p.range_sse(3, 3), 0.0);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn partition_sse_sums_runs() {
        let p = PrefixSums::new(&[1, 2, 3, 4]);
        // Cuts at 1 and 3 → runs [1], [2,3], [4].
        assert!((p.partition_sse(&[1, 3]) - 0.5).abs() < 1e-12);
        // No cuts → SSE of the whole range.
        assert!((p.partition_sse(&[]) - p.range_sse(0, 4)).abs() < 1e-12);
    }
}
