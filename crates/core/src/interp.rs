//! Overlap-ratio interpolation over value-carrying buckets.
//!
//! The paper's frequency-set machinery is equality-only: a bucket knows
//! which *frequencies* it holds but nothing about where its domain
//! values lie on the value axis. [`ValueBounds`] attaches that missing
//! coordinate — the half-open value span `[lo, hi)` and the
//! distinct-value count of one bucket — and this module owns **all**
//! interpolation arithmetic built on it (a CI guard keeps re-derived
//! `(r − c) / w` fractions out of the engine and query crates).
//!
//! The intra-bucket model is continuous-uniform: a bucket's value mass
//! is spread evenly over `[lo, hi)`. Integer domains embed by mapping
//! the closed integer interval `[a, b]` to the continuous interval
//! `[a, b + 1)`, so a singleton bucket over value `v` spans `[v, v + 1)`
//! and a point query `= v` covers it exactly. Under that embedding:
//!
//! * the fraction of a bucket satisfying a range predicate is
//!   `len([lo, hi) ∩ [qlo, qhi)) / (hi − lo)`
//!   ([`overlap_fraction`]), and
//! * the fraction of value *pairs* from two buckets within a band
//!   `|x − y| ≤ w` is `∫ len([x − w, x + w + 1) ∩ [lo₂, hi₂)) dx`
//!   over `x ∈ [lo₁, hi₁)`, normalised by both widths
//!   ([`band_fraction`]; the integrand is piecewise linear, so the
//!   trapezoid rule over its breakpoints is exact).
//!
//! Buckets whose span has collapsed to a point (and any non-finite
//! intermediate) cannot support the continuous model; those fractions
//! fall back to point-mass indicators and every such drop — as well as
//! any clamp back into `[0, 1]` — is counted in the
//! `est_range_clamped_total` metric, mirroring the NaN/Inf conventions
//! pinned in `query::metrics` (degenerate input is answered, never
//! propagated as NaN).

use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// The value span and distinct-count of one histogram bucket: the
/// half-open interval `[lo, hi)` containing every domain value assigned
/// to the bucket, plus how many distinct values it holds.
///
/// Integer convention: `hi` is the bucket's largest value **plus one**,
/// so a bucket holding only value `v` spans `[v, v + 1)` and has
/// `width() == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValueBounds {
    /// Smallest domain value in the bucket (inclusive).
    pub lo: u64,
    /// One past the largest domain value in the bucket (exclusive).
    pub hi: u64,
    /// Number of distinct domain values in the bucket.
    pub distinct: u64,
}

impl ValueBounds {
    /// Bounds of a bucket holding exactly the given distinct values.
    /// Returns `None` for an empty slice.
    pub fn from_values(values: &[u64]) -> Option<Self> {
        let lo = *values.iter().min()?;
        let hi = values.iter().max()?.saturating_add(1);
        Some(Self {
            lo,
            hi,
            distinct: values.len() as u64,
        })
    }

    /// The continuous width `hi − lo` of the span (saturating; a
    /// well-formed bucket has width ≥ 1).
    pub fn width(&self) -> f64 {
        self.hi.saturating_sub(self.lo) as f64
    }

    /// Whether the span covers at most one integer value. Singleton
    /// buckets are point masses: band fractions answer them with exact
    /// discrete indicators instead of the continuous model (which would
    /// halve the mass of an exactly-matching pair).
    pub fn is_singleton(&self) -> bool {
        self.hi.saturating_sub(self.lo) <= 1
    }

    /// Structural validity: a non-empty span that can hold `distinct`
    /// integer values.
    pub fn is_well_formed(&self) -> bool {
        self.lo < self.hi && self.distinct >= 1 && self.distinct <= self.hi - self.lo
    }
}

/// Cached handle of the `est_range_clamped_total` counter (the guard
/// fires on estimation hot paths; formatting the name each time would
/// allocate).
fn clamp_counter() -> &'static Arc<obs::Counter> {
    static CELL: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    CELL.get_or_init(|| obs::counter("est_range_clamped_total"))
}

/// Clamps an interpolated fraction into `[0, 1]`, counting every drop
/// (out-of-range or non-finite input) in `est_range_clamped_total`.
/// NaN clamps to 0 — a degenerate fraction contributes nothing rather
/// than poisoning the whole estimate.
pub fn clamp_fraction(fraction: f64) -> f64 {
    if fraction.is_nan() {
        clamp_counter().inc();
        return 0.0;
    }
    if fraction < 0.0 {
        clamp_counter().inc();
        return 0.0;
    }
    if fraction > 1.0 {
        clamp_counter().inc();
        return 1.0;
    }
    fraction
}

/// Fraction of a bucket's value mass inside the continuous query
/// interval `[q_lo, q_hi)`, under the continuous-uniform intra-bucket
/// assumption. Infinite endpoints express one-sided predicates
/// (`f > c` is `[c + 1, +∞)`).
///
/// A zero-width span (degenerate bounds) is answered as a point mass at
/// `lo` and counted as a clamp; the result is always in `[0, 1]`.
pub fn overlap_fraction(bounds: &ValueBounds, q_lo: f64, q_hi: f64) -> f64 {
    if q_lo.is_nan() || q_hi.is_nan() {
        // min/max would silently swallow the NaN; answer 0 and count
        // the drop instead.
        clamp_counter().inc();
        return 0.0;
    }
    let width = bounds.width();
    if width <= 0.0 {
        clamp_counter().inc();
        let point = bounds.lo as f64;
        return if point >= q_lo && point < q_hi {
            1.0
        } else {
            0.0
        };
    }
    let lo = bounds.lo as f64;
    let hi = bounds.hi as f64;
    let overlap = (q_hi.min(hi) - q_lo.max(lo)).max(0.0);
    clamp_fraction(overlap / width)
}

/// Fraction of value pairs `(x, y)` — `x` from `left`, `y` from
/// `right` — satisfying the band predicate `|x − y| ≤ w`, under the
/// integer embedding `[a, b] ↦ [a, b + 1)`.
///
/// Three cases keep point masses exact (the histogram-overlap algebra
/// of inequality-join estimation):
///
/// 1. both spans singleton → the discrete indicator `|v − u| ≤ w`;
/// 2. one span singleton at `v` → the other bucket's overlap with
///    `[v − w, v + w + 1)`;
/// 3. both spans wide → the exact integral of the piecewise-linear
///    window-overlap function, normalised by both widths.
pub fn band_fraction(left: &ValueBounds, right: &ValueBounds, w: u64) -> f64 {
    match (left.is_singleton(), right.is_singleton()) {
        (true, true) => {
            let diff = left.lo.abs_diff(right.lo);
            if diff <= w {
                1.0
            } else {
                0.0
            }
        }
        (true, false) => singleton_band_fraction(left.lo, right, w),
        (false, true) => singleton_band_fraction(right.lo, left, w),
        (false, false) => {
            let wf = w as f64;
            let (lo1, hi1) = (left.lo as f64, left.hi as f64);
            let (lo2, hi2) = (right.lo as f64, right.hi as f64);
            // len([x − w, x + w + 1) ∩ [lo2, hi2)): piecewise linear in
            // x, with slope changes exactly where a window edge crosses
            // a bucket edge.
            let window = |x: f64| ((x + wf + 1.0).min(hi2) - (x - wf).max(lo2)).max(0.0);
            let mut pts = vec![lo1, hi1, lo2 - wf - 1.0, hi2 - wf - 1.0, lo2 + wf, hi2 + wf];
            pts.retain(|&x| (lo1..=hi1).contains(&x));
            pts.sort_by(f64::total_cmp);
            pts.dedup();
            // Trapezoid rule is exact on each linear segment.
            let integral: f64 = pts
                .windows(2)
                .map(|seg| (seg[1] - seg[0]) * 0.5 * (window(seg[0]) + window(seg[1])))
                .sum();
            clamp_fraction(integral / (left.width() * right.width()))
        }
    }
}

/// Case 2 of [`band_fraction`]: a point mass at `v` against a wide
/// bucket — the wide bucket's overlap with the band window around `v`.
fn singleton_band_fraction(v: u64, wide: &ValueBounds, w: u64) -> f64 {
    let q_lo = v as f64 - w as f64;
    let q_hi = v as f64 + w as f64 + 1.0;
    overlap_fraction(wide, q_lo, q_hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: u64, hi: u64, distinct: u64) -> ValueBounds {
        ValueBounds { lo, hi, distinct }
    }

    #[test]
    fn from_values_spans_min_to_max_plus_one() {
        assert_eq!(ValueBounds::from_values(&[]), None);
        assert_eq!(ValueBounds::from_values(&[7]), Some(b(7, 8, 1)));
        assert_eq!(ValueBounds::from_values(&[3, 9, 5]), Some(b(3, 10, 3)));
        assert!(b(3, 10, 3).is_well_formed());
        assert!(!b(3, 3, 1).is_well_formed());
        assert!(!b(3, 4, 2).is_well_formed());
    }

    #[test]
    fn overlap_fraction_basic_geometry() {
        let bucket = b(10, 20, 10);
        // Disjoint, containing, and partial intervals.
        assert_eq!(overlap_fraction(&bucket, 0.0, 5.0), 0.0);
        assert_eq!(overlap_fraction(&bucket, 0.0, 100.0), 1.0);
        assert!((overlap_fraction(&bucket, 15.0, 100.0) - 0.5).abs() < 1e-12);
        assert!((overlap_fraction(&bucket, 12.0, 14.0) - 0.2).abs() < 1e-12);
        // One-sided predicates via infinite endpoints.
        assert_eq!(
            overlap_fraction(&bucket, f64::NEG_INFINITY, f64::INFINITY),
            1.0
        );
        assert!((overlap_fraction(&bucket, 18.0, f64::INFINITY) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn overlap_fraction_singleton_matches_point_membership() {
        let point = b(5, 6, 1);
        // BETWEEN 5 AND 7 ↦ [5, 8).
        assert_eq!(overlap_fraction(&point, 5.0, 8.0), 1.0);
        assert_eq!(overlap_fraction(&point, 6.0, 8.0), 0.0);
    }

    #[test]
    fn overlap_fraction_is_monotone_in_the_interval() {
        let bucket = b(100, 150, 37);
        let mut last = 0.0;
        for widen in 0..60 {
            let f = overlap_fraction(&bucket, 120.0 - widen as f64, 121.0 + widen as f64);
            assert!(f >= last, "widening shrank the fraction");
            last = f;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn degenerate_and_non_finite_inputs_clamp() {
        let before = obs::counter("est_range_clamped_total").get();
        // Zero-width span: answered as a point mass, counted.
        let degenerate = b(5, 5, 1);
        assert_eq!(overlap_fraction(&degenerate, 0.0, 10.0), 1.0);
        assert_eq!(overlap_fraction(&degenerate, 6.0, 10.0), 0.0);
        // NaN endpoints clamp to 0 instead of propagating.
        assert_eq!(overlap_fraction(&b(0, 10, 10), f64::NAN, 5.0), 0.0);
        assert!(clamp_fraction(f64::NAN) == 0.0);
        assert_eq!(clamp_fraction(1.5), 1.0);
        assert_eq!(clamp_fraction(-0.5), 0.0);
        let after = obs::counter("est_range_clamped_total").get();
        assert!(after >= before + 6, "clamps counted: {before} -> {after}");
    }

    #[test]
    fn band_fraction_point_masses_are_exact() {
        // Same value, zero band: every pair matches.
        assert_eq!(band_fraction(&b(4, 5, 1), &b(4, 5, 1), 0), 1.0);
        assert_eq!(band_fraction(&b(4, 5, 1), &b(5, 6, 1), 0), 0.0);
        assert_eq!(band_fraction(&b(4, 5, 1), &b(7, 8, 1), 3), 1.0);
        assert_eq!(band_fraction(&b(4, 5, 1), &b(8, 9, 1), 3), 0.0);
    }

    #[test]
    fn band_fraction_singleton_against_wide_bucket() {
        // Point 10 vs values uniform on [0, 20): window [8, 13) covers
        // 5/20 of the wide bucket.
        let f = band_fraction(&b(10, 11, 1), &b(0, 20, 20), 2);
        assert!((f - 0.25).abs() < 1e-12, "{f}");
        // Symmetric in argument order.
        let g = band_fraction(&b(0, 20, 20), &b(10, 11, 1), 2);
        assert_eq!(f, g);
    }

    #[test]
    fn band_fraction_wide_buckets_integrate_exactly() {
        // Identical unit-uniform buckets [0, 2) with w = 0: the window
        // around x is [x, x + 1); overlap with [0, 2) integrates to
        // ∫₀¹ (x+1 − 0... ) — check against a fine Riemann sum instead
        // of hand algebra.
        for (l, r, w) in [
            (b(0, 2, 2), b(0, 2, 2), 0),
            (b(0, 10, 10), b(5, 25, 20), 3),
            (b(100, 140, 40), b(90, 120, 30), 7),
        ] {
            let exact = band_fraction(&l, &r, w);
            let n = 20_000;
            let (lo1, hi1) = (l.lo as f64, l.hi as f64);
            let step = (hi1 - lo1) / n as f64;
            let wf = w as f64;
            let riemann: f64 = (0..n)
                .map(|i| {
                    let x = lo1 + (i as f64 + 0.5) * step;
                    ((x + wf + 1.0).min(r.hi as f64) - (x - wf).max(r.lo as f64)).max(0.0) * step
                })
                .sum();
            let approx = riemann / (l.width() * r.width());
            assert!((exact - approx).abs() < 1e-3, "{exact} vs {approx}");
            assert!((0.0..=1.0).contains(&exact));
        }
    }

    #[test]
    fn band_fraction_is_monotone_in_the_band_width() {
        let l = b(0, 30, 30);
        let r = b(50, 90, 40);
        let mut last = 0.0;
        for w in 0..120 {
            let f = band_fraction(&l, &r, w);
            assert!(f + 1e-12 >= last, "widening the band shrank the fraction");
            last = f;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }
}
