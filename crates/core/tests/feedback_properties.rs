//! Property-based tests for the feedback tuner's hard invariants: every
//! tune step conserves total frequency mass exactly, keeps bucket value
//! spans well-formed and pairwise disjoint, keeps the exception list
//! strictly sorted with valid bucket references, never exceeds the β
//! bucket budget, and is deterministic.

use proptest::prelude::*;
use vopt_hist::feedback::{total_mass, tune_step, TuneConfig};
use vopt_hist::ValueBounds;

type Parts = (Vec<u64>, u32, Vec<(u64, u32)>, Vec<ValueBounds>);

/// Histograms over a contiguous integer domain partitioned into
/// consecutive buckets of varying width (1–6 distinct values each, so
/// the lcm transfer-quantum logic sees genuinely mixed distinct
/// counts), one bucket designated default with its values unlisted.
fn parts_strategy() -> impl Strategy<Value = Parts> {
    prop::collection::vec((0u64..=500, 1u64..=6), 2..=8)
        .prop_flat_map(|avg_sizes| {
            let n = avg_sizes.len();
            (Just(avg_sizes), 0..n)
        })
        .prop_map(|(avg_sizes, default)| {
            let mut lo = 0u64;
            let mut avgs = Vec::new();
            let mut bounds = Vec::new();
            let mut exceptions = Vec::new();
            for (b, &(avg, size)) in avg_sizes.iter().enumerate() {
                avgs.push(avg);
                bounds.push(ValueBounds {
                    lo,
                    hi: lo + size,
                    distinct: size,
                });
                if b != default {
                    for v in lo..lo + size {
                        exceptions.push((v, b as u32));
                    }
                }
                lo += size;
            }
            (avgs, default as u32, exceptions, bounds)
        })
}

/// Structural validity: spans well-formed and pairwise disjoint,
/// exceptions strictly increasing with in-range bucket references,
/// default bucket in range, parts parallel.
fn assert_valid(avgs: &[u64], default: u32, exceptions: &[(u64, u32)], bounds: &[ValueBounds]) {
    let n = avgs.len();
    assert!(n >= 1);
    assert!((default as usize) < n);
    assert_eq!(bounds.len(), n);
    for bb in bounds {
        assert!(bb.lo < bb.hi, "span [{}, {}) malformed", bb.lo, bb.hi);
        assert!(bb.distinct >= 1 && bb.distinct <= bb.hi - bb.lo);
    }
    let mut sorted: Vec<&ValueBounds> = bounds.iter().collect();
    sorted.sort_by_key(|b| b.lo);
    for w in sorted.windows(2) {
        assert!(
            w[0].hi <= w[1].lo,
            "spans [{}, {}) and [{}, {}) overlap",
            w[0].lo,
            w[0].hi,
            w[1].lo,
            w[1].hi
        );
    }
    for w in exceptions.windows(2) {
        assert!(w[0].0 < w[1].0, "exceptions not strictly increasing");
    }
    for &(_, b) in exceptions {
        assert!((b as usize) < n, "exception references bucket {b} of {n}");
    }
}

proptest! {
    /// The conserved quantity: Σ avg·distinct is bit-identical across
    /// every applied step, whatever the observation said.
    #[test]
    fn every_step_conserves_total_mass(
        parts in parts_strategy(),
        hit_sel in 0usize..64,
        actual in 0u32..=2_000,
        beta in 1usize..=10,
    ) {
        let (avgs, default, exceptions, bounds) = parts;
        let hit = hit_sel % avgs.len();
        let estimate = avgs[hit] as f64;
        let before = total_mass(&avgs, &bounds);
        if let Ok(d) = tune_step(
            &avgs, default, &exceptions, &bounds,
            estimate, actual as f64, beta, &TuneConfig::default(),
        ) {
            prop_assert_eq!(total_mass(&d.bucket_avgs, &d.bounds), before);
            prop_assert!(d.mass_moved > 0);
        }
    }

    /// Structure survives: spans stay disjoint and well-formed, the
    /// exception list stays sorted and in range, and the bucket count
    /// never exceeds max(β, incoming count).
    #[test]
    fn every_step_keeps_structure_valid_and_within_budget(
        parts in parts_strategy(),
        hit_sel in 0usize..64,
        actual in 0u32..=2_000,
        beta in 1usize..=10,
    ) {
        let (avgs, default, exceptions, bounds) = parts;
        let hit = hit_sel % avgs.len();
        let estimate = avgs[hit] as f64;
        let n_before = avgs.len();
        if let Ok(d) = tune_step(
            &avgs, default, &exceptions, &bounds,
            estimate, actual as f64, beta, &TuneConfig::default(),
        ) {
            assert_valid(&d.bucket_avgs, d.default_bucket, &d.exceptions, &d.bounds);
            prop_assert!(d.bucket_avgs.len() <= beta.max(n_before));
            // Every originally listed value is still listed (tuning
            // re-buckets values, it never forgets them), and the
            // per-bucket distinct counts still sum up.
            prop_assert_eq!(
                d.exceptions.iter().map(|&(v, _)| v).collect::<Vec<_>>(),
                exceptions.iter().map(|&(v, _)| v).collect::<Vec<_>>()
            );
        }
    }

    /// An applied step moves the hit bucket's estimate toward the
    /// observed truth: the predicted Q-error never degrades.
    #[test]
    fn applied_steps_never_increase_qerror(
        parts in parts_strategy(),
        hit_sel in 0usize..64,
        actual in 1u32..=2_000,
        beta in 1usize..=10,
    ) {
        let (avgs, default, exceptions, bounds) = parts;
        let hit = hit_sel % avgs.len();
        let estimate = avgs[hit] as f64;
        if let Ok(d) = tune_step(
            &avgs, default, &exceptions, &bounds,
            estimate, actual as f64, beta, &TuneConfig::default(),
        ) {
            prop_assert!(
                d.qerror_post <= d.qerror_pre + 1e-9,
                "q {} -> {}", d.qerror_pre, d.qerror_post
            );
        }
    }

    /// Tune steps are pure functions of their inputs — the daemon's
    /// trace-determinism guarantee rests on this.
    #[test]
    fn tune_step_is_deterministic(
        parts in parts_strategy(),
        hit_sel in 0usize..64,
        actual in 0u32..=2_000,
        beta in 1usize..=10,
    ) {
        let (avgs, default, exceptions, bounds) = parts;
        let hit = hit_sel % avgs.len();
        let estimate = avgs[hit] as f64;
        let cfg = TuneConfig::default();
        let a = tune_step(&avgs, default, &exceptions, &bounds, estimate, actual as f64, beta, &cfg);
        let b = tune_step(&avgs, default, &exceptions, &bounds, estimate, actual as f64, beta, &cfg);
        prop_assert_eq!(a, b);
    }
}
