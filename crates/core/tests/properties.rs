//! Property-based tests for the histogram invariants the paper proves.

use proptest::prelude::*;
use vopt_hist::construct::{
    equi_depth, equi_width, trivial, v_opt_end_biased, v_opt_serial, v_opt_serial_dp,
    BiasedChoices, EndBiasedChoices,
};
use vopt_hist::{Histogram, RoundingMode};

/// Frequencies within u32 range keep every Σf² far from u128 overflow.
fn freqs_strategy(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..10_000, 1..=max_len)
}

proptest! {
    /// The O(M²β) dynamic program computes the same optimum as the
    /// paper's exhaustive Algorithm V-OptHist (Theorem 4.1).
    #[test]
    fn dp_matches_exhaustive(freqs in freqs_strategy(10), beta in 1usize..=10) {
        prop_assume!(beta <= freqs.len());
        let dp = v_opt_serial_dp(&freqs, beta).unwrap();
        let ex = v_opt_serial(&freqs, beta).unwrap();
        prop_assert!((dp.error - ex.error).abs() < 1e-6,
            "dp {} vs exhaustive {}", dp.error, ex.error);
    }

    /// Algorithm V-OptBiasHist (Theorem 4.2) equals brute force over all
    /// end-biased histograms.
    #[test]
    fn fast_end_biased_matches_enumeration(freqs in freqs_strategy(12), beta in 1usize..=6) {
        prop_assume!(beta <= freqs.len());
        let fast = v_opt_end_biased(&freqs, beta).unwrap();
        let brute = EndBiasedChoices::new(&freqs, beta)
            .unwrap()
            .map(|h| h.self_join_error())
            .fold(f64::INFINITY, f64::min);
        prop_assert!((fast.error - brute).abs() < 1e-6);
    }

    /// Corollary 3.1: for a self-join, the optimal *biased* histogram is
    /// end-biased — brute force over all biased histograms never beats
    /// Algorithm V-OptBiasHist.
    #[test]
    fn optimal_biased_is_end_biased_for_self_join(
        freqs in freqs_strategy(8),
        beta in 2usize..=4,
    ) {
        prop_assume!(beta <= freqs.len());
        let best_biased = BiasedChoices::new(&freqs, beta)
            .unwrap()
            .map(|h| h.self_join_error())
            .fold(f64::INFINITY, f64::min);
        let end_biased = v_opt_end_biased(&freqs, beta).unwrap().error;
        prop_assert!((best_biased - end_biased).abs() < 1e-6,
            "a non-end-biased biased histogram beat V-OptBiasHist");
    }

    /// Class dominance (§5.1 ranking, the provable part): the v-optimal
    /// serial error lower-bounds the end-biased error, which lower-bounds
    /// the trivial error; and every class is exact with M buckets.
    #[test]
    fn error_dominance_chain(freqs in freqs_strategy(10)) {
        let m = freqs.len();
        let beta = (m / 2).max(1);
        let serial = v_opt_serial_dp(&freqs, beta).unwrap().error;
        let biased = v_opt_end_biased(&freqs, beta).unwrap().error;
        let triv = trivial(&freqs).unwrap().self_join_error();
        prop_assert!(serial <= biased + 1e-6);
        prop_assert!(biased <= triv + 1e-6);
        prop_assert!(v_opt_serial_dp(&freqs, m).unwrap().error < 1e-9);
    }

    /// The approximation preserves the relation size: in Exact mode the
    /// approximated frequencies sum to exactly the true total (bucket
    /// averages redistribute, never add or remove tuples).
    #[test]
    fn approximation_preserves_total(freqs in freqs_strategy(20), beta in 1usize..=8) {
        prop_assume!(beta <= freqs.len());
        for hist in [
            equi_width(&freqs, beta).unwrap(),
            equi_depth(&freqs, beta).unwrap(),
            v_opt_serial_dp(&freqs, beta).unwrap().histogram,
            v_opt_end_biased(&freqs, beta).unwrap().histogram,
        ] {
            let approx: f64 = hist.approx_frequencies(RoundingMode::Exact).iter().sum();
            let total: u64 = freqs.iter().sum();
            prop_assert!((approx - total as f64).abs() < 1e-6 * (total as f64 + 1.0));
        }
    }

    /// Proposition 3.1: S − S' equals Σ PᵢVᵢ for any histogram, not just
    /// serial ones.
    #[test]
    fn prop31_error_identity(freqs in freqs_strategy(15), seed in any::<u64>()) {
        // Random assignment into up to 4 buckets (not necessarily serial).
        let m = freqs.len();
        let buckets = (seed as usize % 4).min(m - 1) + 1;
        let assignment: Vec<u32> = (0..m)
            .map(|i| ((seed.rotate_left(i as u32) ^ i as u64) % buckets as u64) as u32)
            .collect();
        // Ensure every bucket non-empty by pinning the first `buckets`.
        let mut assignment = assignment;
        for b in 0..buckets {
            assignment[b] = b as u32;
        }
        let hist = Histogram::from_assignment(&freqs, assignment, buckets).unwrap();
        let s = hist.exact_self_join_size() as f64;
        let s_approx = hist.approx_self_join_size(RoundingMode::Exact);
        prop_assert!((s - s_approx - hist.self_join_error()).abs() < 1e-6 * (s + 1.0));
        prop_assert!(hist.self_join_error() >= -1e-9);
    }

    /// Serial histograms produced by the optimisers really are serial,
    /// and their buckets partition the domain.
    #[test]
    fn optimisers_produce_serial_partitions(freqs in freqs_strategy(12), beta in 1usize..=6) {
        prop_assume!(beta <= freqs.len());
        for hist in [
            v_opt_serial_dp(&freqs, beta).unwrap().histogram,
            v_opt_end_biased(&freqs, beta).unwrap().histogram,
        ] {
            prop_assert!(hist.is_serial());
            prop_assert_eq!(hist.num_buckets(), beta);
            let covered: u64 = hist.buckets().iter().map(|b| b.count()).sum();
            prop_assert_eq!(covered as usize, freqs.len());
        }
    }

    /// Rounded bucket averages differ from exact ones by at most 0.5 per
    /// value.
    #[test]
    fn rounding_stays_within_half(freqs in freqs_strategy(16), beta in 1usize..=5) {
        prop_assume!(beta <= freqs.len());
        let hist = v_opt_serial_dp(&freqs, beta).unwrap().histogram;
        let exact = hist.approx_frequencies(RoundingMode::Exact);
        let rounded = hist.approx_frequencies(RoundingMode::PaperRounded);
        for (e, r) in exact.iter().zip(&rounded) {
            prop_assert!((e - r).abs() <= 0.5 + 1e-9);
        }
    }
}
