//! Property-based tests for the builder registry: every registered
//! builder stays within its declared [`HistogramClass`], and the serial
//! optimisers agree when invoked through [`BuilderSpec`]s.

use proptest::prelude::*;
use vopt_hist::{builders, BuilderSpec, HistogramClass};

/// Frequencies within u32 range keep every Σf² far from u128 overflow.
/// Strictly positive so class detection is never confused by zero-mass
/// singleton buckets tying with the multivalued bucket's extremes.
fn freqs_strategy(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..10_000, 1..=max_len)
}

proptest! {
    /// Every registered builder's output classifies within the class the
    /// registry declares for it: `declared_class().contains(class())`.
    /// (Containment, not equality — e.g. `v_opt_serial` at β = M yields
    /// all singletons, which classify as the more specific `EndBiased`.)
    #[test]
    fn builders_stay_within_declared_class(
        freqs in freqs_strategy(12),
        beta in 1usize..=12,
    ) {
        prop_assume!(beta <= freqs.len());
        for builder in builders() {
            // Exhaustive search over 12 values is at most C(11, β−1)·β —
            // small enough to run for every builder.
            let built = builder.spec(beta).build_strict(&freqs).unwrap().histogram;
            prop_assert!(
                builder.declared_class().contains(built.class()),
                "{} declared {:?} but built {:?}",
                builder.name(),
                builder.declared_class(),
                built.class()
            );
        }
    }

    /// The explicit end-biased split spec also stays within EndBiased.
    #[test]
    fn explicit_split_stays_end_biased(
        freqs in freqs_strategy(10),
        high in 0usize..=3,
        low in 0usize..=3,
    ) {
        prop_assume!(high + low <= freqs.len());
        let spec = BuilderSpec::EndBiased { high, low };
        let built = spec.build_strict(&freqs).unwrap().histogram;
        prop_assert!(
            HistogramClass::EndBiased.contains(built.class()),
            "end_biased({high},{low}) built {:?}",
            built.class()
        );
    }

    /// Theorem 4.1 equivalence survives the registry: the exhaustive
    /// `v_opt_serial` and the DP `v_opt_serial` specs find the same
    /// optimum error when both are invoked through `BuilderSpec`.
    #[test]
    fn serial_specs_agree(freqs in freqs_strategy(10), beta in 1usize..=10) {
        prop_assume!(beta <= freqs.len());
        let dp = BuilderSpec::VOptSerial(beta).build_strict(&freqs).unwrap();
        let ex = BuilderSpec::VOptSerialExhaustive(beta)
            .build_strict(&freqs)
            .unwrap();
        prop_assert!(
            (dp.error - ex.error).abs() < 1e-6,
            "dp {} vs exhaustive {}",
            dp.error,
            ex.error
        );
    }

    /// The forgiving `build` entry point clamps the budget instead of
    /// failing, for every registered builder.
    #[test]
    fn build_clamps_over_budget(freqs in freqs_strategy(6)) {
        for builder in builders() {
            let h = builder.spec(freqs.len() + 5).build(&freqs).unwrap();
            prop_assert!(h.num_buckets() <= freqs.len(), "{}", builder.name());
        }
    }
}
