//! Concurrency stress: writer, analyzer, and reader threads hammer one
//! durable catalog while the maintenance daemon sweeps on its own
//! thread. The test asserts liveness (the scope completes — no
//! deadlock between the journal lock, the catalog, and the daemon),
//! that no update notification is ever lost (the relation's version
//! counter lands exactly on the number of notes sent), and that every
//! reader observes a monotone version counter with staleness bounded
//! by it — a torn or backwards read would break both.

use relstore::catalog::StatKey;
use relstore::{Daemon, DaemonConfig, DaemonCore, DurableCatalog, Relation, Schema};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use vopt_hist::BuilderSpec;

const WRITERS: u64 = 3;
const NOTES_PER_WRITER: u64 = 120;
const READS_PER_READER: usize = 400;
const ANALYZES_PER_ANALYZER: usize = 25;

fn scratch(name: &str) -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    dir.push("relstore_stress");
    dir.push(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> BuilderSpec {
    BuilderSpec::parse("v_opt_end_biased", 6).expect("registered class")
}

/// A small skewed single-column relation, built inline so the stress
/// test has no cross-crate data dependencies.
fn relation() -> Relation {
    let schema = Schema::new(["a"]).expect("schema");
    let column: Vec<u64> = (0..2_000u64).map(|i| (i * i) % 97).collect();
    Relation::from_columns("t", schema, vec![column]).expect("relation")
}

fn version_of(store: &DurableCatalog, relation: &str) -> u64 {
    store
        .catalog()
        .version_snapshot()
        .iter()
        .find(|(name, _)| name == relation)
        .map_or(0, |&(_, v)| v)
}

#[test]
fn concurrent_catalog_use_under_daemon_sweeps() {
    let dir = scratch("concurrent");
    let store = Arc::new(DurableCatalog::open(&dir).expect("open store"));
    let rel = Arc::new(relation());
    let key = StatKey::new("t", &["a"]);

    // Seed one histogram so readers have something to find from tick 0.
    store.analyze(&rel, "a", spec()).expect("seed analyze");

    let mut core = DaemonCore::new(DaemonConfig::default());
    core.register_with_spec(Arc::clone(&rel), "a", spec());
    let daemon = Daemon::spawn(core, Arc::clone(&store), Duration::from_millis(1));

    let result = crossbeam::thread::scope(|s| {
        // Writers: each sends NOTES_PER_WRITER journaled update notes.
        for _ in 0..WRITERS {
            let store = Arc::clone(&store);
            s.spawn(move |_| {
                for _ in 0..NOTES_PER_WRITER {
                    store.note_updates("t", 1).expect("note_updates");
                }
            });
        }
        // Analyzers: rebuild the histogram while writers churn the
        // version counter and the daemon races them with its own
        // refreshes.
        for _ in 0..2 {
            let store = Arc::clone(&store);
            let rel = Arc::clone(&rel);
            s.spawn(move |_| {
                for _ in 0..ANALYZES_PER_ANALYZER {
                    store.analyze(&rel, "a", spec()).expect("analyze");
                }
            });
        }
        // Readers: the version counter a single thread observes must
        // never move backwards, and staleness (updates since the last
        // rebuild) can never exceed the total updates ever noted.
        for _ in 0..2 {
            let store = Arc::clone(&store);
            let key = key.clone();
            s.spawn(move |_| {
                let mut last_version = 0u64;
                for _ in 0..READS_PER_READER {
                    // Staleness first, version second: the counter only
                    // grows, so a staleness observed at t1 is bounded by
                    // the total updates observed at t2 >= t1 (the other
                    // order would race with concurrent writers).
                    let staleness = store.catalog().staleness(&key).expect("staleness");
                    let version = version_of(&store, "t");
                    assert!(
                        version >= last_version,
                        "version counter went backwards: {last_version} -> {version}"
                    );
                    last_version = version;
                    assert!(
                        staleness <= version,
                        "staleness {staleness} exceeds total updates {version}"
                    );
                    assert!(
                        store.catalog().get(&key).is_ok(),
                        "histogram vanished mid-run"
                    );
                }
            });
        }
        // And keep poking the daemon from outside while all of the
        // above runs.
        let poker = &daemon;
        s.spawn(move |_| {
            for _ in 0..20 {
                poker.sweep_now();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });
    assert!(result.is_ok(), "a stress thread panicked: {result:?}");

    let core = daemon.stop();
    assert!(core.now() > 0, "daemon never swept while the stress ran");
    let (closed, open, half_open) = core.breaker_counts();
    assert_eq!(
        (closed, open, half_open),
        (1, 0, 0),
        "healthy store must leave the breaker closed"
    );

    // Exactly-once accounting: every note landed, none were lost or
    // double-applied, despite journal appends interleaving with daemon
    // refreshes and checkpoint-eligible sweeps.
    assert_eq!(version_of(&store, "t"), WRITERS * NOTES_PER_WRITER);

    // The catalog that read-only recovery sees equals the catalog we
    // are holding: a crash right now would lose nothing committed,
    // because every mutation was fsynced before it was applied.
    let recovered = relstore::Catalog::recover(&dir).expect("recover");
    assert_eq!(
        recovered.version_snapshot(),
        store.catalog().version_snapshot()
    );
    assert!(recovered.get(&key).is_ok());
    // Full-state equality, not just version counters: appends apply in
    // journal order even under contention, so replay rebuilds the same
    // final histograms and re-stamps entries against the same replayed
    // version counters, leaving staleness identical to the live catalog.
    assert_eq!(
        relstore::codec::encode_catalog(&recovered).to_vec(),
        relstore::codec::encode_catalog(store.catalog()).to_vec(),
        "journal replay must rebuild the exact live histograms"
    );
    assert_eq!(
        recovered.staleness(&key).expect("recovered staleness"),
        store.catalog().staleness(&key).expect("live staleness"),
        "replayed built-at stamps must match the live catalog"
    );
}
