//! Concurrency stress: writer, analyzer, and reader threads hammer one
//! durable catalog while the maintenance daemon sweeps on its own
//! thread. The test asserts liveness (the scope completes — no
//! deadlock between the journal lock, the catalog, and the daemon),
//! that no update notification is ever lost (the relation's version
//! counter lands exactly on the number of notes sent), and that every
//! reader observes a monotone version counter with staleness bounded
//! by it — a torn or backwards read would break both.

use relstore::catalog::StatKey;
use relstore::{Daemon, DaemonConfig, DaemonCore, DurableCatalog, Relation, Schema};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use vopt_hist::BuilderSpec;

const WRITERS: u64 = 3;
const NOTES_PER_WRITER: u64 = 120;
const READS_PER_READER: usize = 400;
const ANALYZES_PER_ANALYZER: usize = 25;

fn scratch(name: &str) -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    dir.push("relstore_stress");
    dir.push(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> BuilderSpec {
    BuilderSpec::parse("v_opt_end_biased", 6).expect("registered class")
}

/// A small skewed single-column relation, built inline so the stress
/// test has no cross-crate data dependencies.
fn relation() -> Relation {
    let schema = Schema::new(["a"]).expect("schema");
    let column: Vec<u64> = (0..2_000u64).map(|i| (i * i) % 97).collect();
    Relation::from_columns("t", schema, vec![column]).expect("relation")
}

fn version_of(store: &DurableCatalog, relation: &str) -> u64 {
    store
        .catalog()
        .version_snapshot()
        .iter()
        .find(|(name, _)| name == relation)
        .map_or(0, |&(_, v)| v)
}

#[test]
fn concurrent_catalog_use_under_daemon_sweeps() {
    let dir = scratch("concurrent");
    let store = Arc::new(DurableCatalog::open(&dir).expect("open store"));
    let rel = Arc::new(relation());
    let key = StatKey::new("t", &["a"]);

    // Seed one histogram so readers have something to find from tick 0.
    store.analyze(&rel, "a", spec()).expect("seed analyze");

    let mut core = DaemonCore::new(DaemonConfig::default());
    core.register_with_spec(Arc::clone(&rel), "a", spec());
    let daemon = Daemon::spawn(core, Arc::clone(&store), Duration::from_millis(1));

    let result = crossbeam::thread::scope(|s| {
        // Writers: each sends NOTES_PER_WRITER journaled update notes.
        for _ in 0..WRITERS {
            let store = Arc::clone(&store);
            s.spawn(move |_| {
                for _ in 0..NOTES_PER_WRITER {
                    store.note_updates("t", 1).expect("note_updates");
                }
            });
        }
        // Analyzers: rebuild the histogram while writers churn the
        // version counter and the daemon races them with its own
        // refreshes.
        for _ in 0..2 {
            let store = Arc::clone(&store);
            let rel = Arc::clone(&rel);
            s.spawn(move |_| {
                for _ in 0..ANALYZES_PER_ANALYZER {
                    store.analyze(&rel, "a", spec()).expect("analyze");
                }
            });
        }
        // Readers: the version counter a single thread observes must
        // never move backwards, and staleness (updates since the last
        // rebuild) can never exceed the total updates ever noted.
        for _ in 0..2 {
            let store = Arc::clone(&store);
            let key = key.clone();
            s.spawn(move |_| {
                let mut last_version = 0u64;
                for _ in 0..READS_PER_READER {
                    // Staleness first, version second: the counter only
                    // grows, so a staleness observed at t1 is bounded by
                    // the total updates observed at t2 >= t1 (the other
                    // order would race with concurrent writers).
                    let staleness = store.catalog().staleness(&key).expect("staleness");
                    let version = version_of(&store, "t");
                    assert!(
                        version >= last_version,
                        "version counter went backwards: {last_version} -> {version}"
                    );
                    last_version = version;
                    assert!(
                        staleness <= version,
                        "staleness {staleness} exceeds total updates {version}"
                    );
                    assert!(
                        store.catalog().get(&key).is_ok(),
                        "histogram vanished mid-run"
                    );
                }
            });
        }
        // And keep poking the daemon from outside while all of the
        // above runs.
        let poker = &daemon;
        s.spawn(move |_| {
            for _ in 0..20 {
                poker.sweep_now();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
    });
    assert!(result.is_ok(), "a stress thread panicked: {result:?}");

    let core = daemon.stop();
    assert!(core.now() > 0, "daemon never swept while the stress ran");
    let (closed, open, half_open) = core.breaker_counts();
    assert_eq!(
        (closed, open, half_open),
        (1, 0, 0),
        "healthy store must leave the breaker closed"
    );

    // Exactly-once accounting: every note landed, none were lost or
    // double-applied, despite journal appends interleaving with daemon
    // refreshes and checkpoint-eligible sweeps.
    assert_eq!(version_of(&store, "t"), WRITERS * NOTES_PER_WRITER);

    // The catalog that read-only recovery sees equals the catalog we
    // are holding: a crash right now would lose nothing committed,
    // because every mutation was fsynced before it was applied.
    let recovered = relstore::Catalog::recover(&dir).expect("recover");
    assert_eq!(
        recovered.version_snapshot(),
        store.catalog().version_snapshot()
    );
    assert!(recovered.get(&key).is_ok());
    // Full-state equality, not just version counters: appends apply in
    // journal order even under contention, so replay rebuilds the same
    // final histograms and re-stamps entries against the same replayed
    // version counters, leaving staleness identical to the live catalog.
    assert_eq!(
        relstore::codec::encode_catalog(&recovered).to_vec(),
        relstore::codec::encode_catalog(store.catalog()).to_vec(),
        "journal replay must rebuild the exact live histograms"
    );
    assert_eq!(
        recovered.staleness(&key).expect("recovered staleness"),
        store.catalog().staleness(&key).expect("live staleness"),
        "replayed built-at stamps must match the live catalog"
    );
}

/// How many multi-column generations the batch writer publishes.
const GENERATIONS: u64 = 150;
/// Columns written atomically per generation.
const GEN_COLUMNS: usize = 4;
/// Snapshot pins per pinning reader.
const PINS_PER_READER: usize = 300;

/// A histogram that *encodes* a generation number: every value has
/// frequency `g + 1`, so every bucket average equals `g + 1` no matter
/// how the builder partitions — readers decode `g` from any bucket.
fn generation_histogram(g: u64) -> relstore::StoredHistogram {
    let values: Vec<u64> = (0..GEN_COLUMNS as u64).collect();
    let freqs = vec![g + 1; GEN_COLUMNS];
    let opt = spec().build_opt(&freqs).expect("generation histogram");
    relstore::StoredHistogram::from_histogram(&values, &opt.histogram).expect("stored")
}

/// Reads the generation a histogram encodes.
fn decode_generation(hist: &relstore::StoredHistogram) -> u64 {
    hist.bucket_avgs()[0].saturating_sub(1)
}

/// Epoch-snapshot isolation: a reader that pins one snapshot and walks
/// several columns must see ONE generation across all of them, even
/// though a writer republishes all columns in batches and the daemon
/// interleaves its own journaled refreshes. A reader going through the
/// mutable catalog handle key-by-key would (correctly) be able to see
/// a torn cross-column state; the pinned snapshot never can. The test
/// also asserts pinned epochs are monotone per reader and that crash
/// recovery rebuilds the exact final catalog.
#[test]
fn snapshot_pinned_readers_never_see_mixed_generations() {
    let dir = scratch("pinned");
    let store = Arc::new(DurableCatalog::open(&dir).expect("open store"));
    let rel = Arc::new(relation());
    let keys: Vec<StatKey> = (0..GEN_COLUMNS)
        .map(|c| StatKey::new("p", &[format!("c{c}").as_str()]))
        .collect();

    // Generation 0 plus the daemon's own column, so every key resolves
    // from the first pin onward.
    let batch = |g: u64| -> Vec<_> {
        keys.iter()
            .map(|k| (k.clone(), generation_histogram(g), Some(spec())))
            .collect()
    };
    store.put_all_with_spec(batch(0)).expect("seed generation");
    store.analyze(&rel, "a", spec()).expect("seed analyze");

    let mut core = DaemonCore::new(DaemonConfig::default());
    core.register_with_spec(Arc::clone(&rel), "a", spec());
    let daemon = Daemon::spawn(core, Arc::clone(&store), Duration::from_millis(1));

    let result = crossbeam::thread::scope(|s| {
        // The batch writer: each generation is one journaled multi-key
        // put — exactly one epoch bump for all four columns.
        {
            let store = Arc::clone(&store);
            s.spawn(move |_| {
                for g in 1..=GENERATIONS {
                    store
                        .put_all_with_spec(batch(g))
                        .expect("publish generation");
                }
            });
        }
        // A staleness writer keeps the daemon refreshing its column so
        // unrelated journaled mutations interleave with the batches.
        {
            let store = Arc::clone(&store);
            s.spawn(move |_| {
                for _ in 0..NOTES_PER_WRITER {
                    store.note_updates("t", 1).expect("note_updates");
                }
            });
        }
        // Pinning readers: all columns of one pinned snapshot agree.
        for _ in 0..3 {
            let store = Arc::clone(&store);
            let keys = keys.clone();
            s.spawn(move |_| {
                let mut last_epoch = 0u64;
                let mut last_generation = 0u64;
                for _ in 0..PINS_PER_READER {
                    let snap = store.catalog().read_snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "pinned epoch went backwards: {last_epoch} -> {}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    let generations: Vec<u64> = keys
                        .iter()
                        .map(|k| decode_generation(snap.get(k).expect("pinned key")))
                        .collect();
                    assert!(
                        generations.iter().all(|&g| g == generations[0]),
                        "mixed-epoch read through one pinned snapshot: {generations:?} \
                         at epoch {last_epoch}"
                    );
                    assert!(
                        generations[0] >= last_generation,
                        "generation went backwards across pins: \
                         {last_generation} -> {}",
                        generations[0]
                    );
                    last_generation = generations[0];
                }
            });
        }
    });
    assert!(result.is_ok(), "a stress thread panicked: {result:?}");
    let core = daemon.stop();
    assert!(core.now() > 0, "daemon never swept while the stress ran");

    // The final state is the last generation, on every column.
    let live = store.catalog().read_snapshot();
    for key in &keys {
        assert_eq!(
            decode_generation(live.get(key).expect("final key")),
            GENERATIONS,
            "final catalog must hold the last published generation"
        );
    }

    // Recovery equals live, byte for byte, including the generation
    // histograms that only ever existed as batched journal appends.
    let recovered = relstore::Catalog::recover(&dir).expect("recover");
    assert_eq!(
        relstore::codec::encode_catalog(&recovered).to_vec(),
        relstore::codec::encode_catalog(store.catalog()).to_vec(),
        "journal replay must rebuild the exact live catalog"
    );
}
