//! Whole-catalog snapshot persistence: encode → decode round trips,
//! including 2-D entries, with staleness reset on reload.

use bytes::Bytes;
use freqdist::zipf::zipf_frequencies;
use relstore::catalog::StatKey;
use relstore::codec::{decode_catalog, encode_catalog};
use relstore::generate::{relation_from_frequency_set, relation_from_matrix};
use relstore::Catalog;
use vopt_hist::BuilderSpec;

fn populated_catalog() -> Catalog {
    let cat = Catalog::new();
    let fa = zipf_frequencies(500, 40, 1.0).unwrap();
    let ra = relation_from_frequency_set("orders", "part", &fa, 1).unwrap();
    cat.analyze_end_biased(&ra, "part", 6).unwrap();
    let fb = zipf_frequencies(300, 25, 0.5).unwrap();
    let rb = relation_from_frequency_set("stock", "part", &fb, 2).unwrap();
    cat.analyze_end_biased(&rb, "part", 4).unwrap();
    // A 2-D entry.
    let fm = zipf_frequencies(200, 12, 0.8).unwrap();
    let m = freqdist::FreqMatrix::from_arrangement(&fm, 3, 4, &freqdist::Arrangement::identity(12))
        .unwrap();
    let rp =
        relation_from_matrix("emp", "dept", "year", &[1, 2, 3], &[7, 8, 9, 10], &m, 3).unwrap();
    cat.analyze_matrix_end_biased(&rp, "dept", "year", 3)
        .unwrap();
    cat
}

#[test]
fn snapshot_round_trips_every_entry() {
    let cat = populated_catalog();
    let restored = decode_catalog(encode_catalog(&cat)).unwrap();

    for key in cat.keys() {
        let original = cat.get(&key).unwrap();
        let reloaded = restored.get(&key).unwrap();
        assert_eq!(original, reloaded, "{key:?}");
    }
    let key2d = StatKey::new("emp", &["dept", "year"]);
    assert_eq!(
        cat.get_matrix(&key2d).unwrap(),
        restored.get_matrix(&key2d).unwrap()
    );
}

#[test]
fn snapshot_round_trips_builder_specs() {
    let cat = populated_catalog();
    let restored = decode_catalog(encode_catalog(&cat)).unwrap();

    for key in cat.keys() {
        assert_eq!(cat.spec_of(&key), restored.spec_of(&key), "{key:?}");
        assert!(cat.spec_of(&key).is_some(), "{key:?} analyzed without spec");
    }
    let key2d = StatKey::new("emp", &["dept", "year"]);
    assert_eq!(cat.matrix_spec_of(&key2d), restored.matrix_spec_of(&key2d));
    assert_eq!(
        restored.matrix_spec_of(&key2d),
        Some(BuilderSpec::VOptEndBiased(3))
    );
}

#[test]
fn raw_puts_round_trip_without_spec() {
    // Histograms stored directly (not through ANALYZE) have no recorded
    // spec; the snapshot must preserve that rather than invent one.
    use relstore::catalog::StoredHistogram;
    let cat = Catalog::new();
    let hist = vopt_hist::construct::end_biased(&[90, 10, 5, 5], 1, 1).unwrap();
    let stored = StoredHistogram::from_histogram(&[1, 2, 3, 4], &hist).unwrap();
    let key = StatKey::new("raw", &["c"]);
    cat.put(key.clone(), stored);
    let restored = decode_catalog(encode_catalog(&cat)).unwrap();
    assert_eq!(restored.spec_of(&key), None);
    assert_eq!(cat.get(&key).unwrap(), restored.get(&key).unwrap());
}

#[test]
fn snapshot_resets_staleness() {
    let cat = populated_catalog();
    cat.note_updates("orders", 99);
    let key = StatKey::new("orders", &["part"]);
    assert_eq!(cat.staleness(&key).unwrap(), 99);
    let restored = decode_catalog(encode_catalog(&cat)).unwrap();
    assert_eq!(restored.staleness(&key).unwrap(), 0);
}

#[test]
fn empty_catalog_round_trips() {
    let cat = Catalog::new();
    let restored = decode_catalog(encode_catalog(&cat)).unwrap();
    assert!(restored.keys().is_empty());
}

#[test]
fn snapshot_is_deterministic() {
    let a = encode_catalog(&populated_catalog());
    let b = encode_catalog(&populated_catalog());
    assert_eq!(a, b, "snapshot encoding must be order-stable");
}

#[test]
fn corrupted_snapshots_rejected() {
    let bytes = encode_catalog(&populated_catalog()).to_vec();
    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(decode_catalog(Bytes::from(bad)).is_err());
    // Truncations at structural boundaries.
    for cut in [0usize, 3, 7, 20, bytes.len() - 1] {
        assert!(
            decode_catalog(Bytes::copy_from_slice(&bytes[..cut])).is_err(),
            "cut at {cut} decoded successfully"
        );
    }
    // Trailing garbage.
    let mut long = bytes.clone();
    long.push(0);
    assert!(decode_catalog(Bytes::from(long)).is_err());
}

mod properties {
    use super::*;
    use proptest::prelude::*;
    use relstore::catalog::StoredHistogram;
    use relstore::StoreError;
    use vopt_hist::construct::v_opt_end_biased;

    /// Random catalog contents: up to four 1-D entries plus an optional
    /// 2-D entry, each over an arbitrary frequency vector.
    fn contents_strategy() -> impl Strategy<Value = (Vec<Vec<u64>>, bool)> {
        (
            prop::collection::vec(prop::collection::vec(0u64..500, 2..=20), 1..=4),
            any::<bool>(),
        )
    }

    fn arbitrary_catalog(relations: &[Vec<u64>], with_matrix: bool) -> Catalog {
        let cat = Catalog::new();
        for (i, freqs) in relations.iter().enumerate() {
            let beta = 3.min(freqs.len());
            let hist = v_opt_end_biased(freqs, beta).unwrap().histogram;
            let values: Vec<u64> = (0..freqs.len() as u64).map(|v| v * 3 + 1).collect();
            let stored = StoredHistogram::from_histogram(&values, &hist).unwrap();
            cat.put(StatKey::new(format!("r{i}"), &["c"]), stored);
        }
        if with_matrix {
            let fm = zipf_frequencies(200, 12, 0.8).unwrap();
            let m = freqdist::FreqMatrix::from_arrangement(
                &fm,
                3,
                4,
                &freqdist::Arrangement::identity(12),
            )
            .unwrap();
            let rp = relation_from_matrix("emp", "dept", "year", &[1, 2, 3], &[7, 8, 9, 10], &m, 3)
                .unwrap();
            cat.analyze_matrix_end_biased(&rp, "dept", "year", 3)
                .unwrap();
        }
        cat
    }

    proptest! {
        /// The VOHG snapshot is lossless for arbitrary catalog contents.
        #[test]
        fn snapshot_round_trips_any_contents(contents in contents_strategy()) {
            let (relations, with_matrix) = contents;
            let cat = arbitrary_catalog(&relations, with_matrix);
            let restored = decode_catalog(encode_catalog(&cat)).unwrap();
            for key in cat.keys() {
                prop_assert_eq!(cat.get(&key).unwrap(), restored.get(&key).unwrap());
            }
            if with_matrix {
                let key = StatKey::new("emp", &["dept", "year"]);
                prop_assert_eq!(
                    cat.get_matrix(&key).unwrap(),
                    restored.get_matrix(&key).unwrap()
                );
            }
        }

        /// Truncating a snapshot at ANY byte boundary yields a codec
        /// error — never a panic, never a silently shorter catalog (the
        /// entry counts in the header pin the expected length).
        #[test]
        fn truncation_is_codec_error_not_panic(
            contents in contents_strategy(),
            cut_frac in 0.0f64..1.0,
        ) {
            let (relations, with_matrix) = contents;
            let bytes = encode_catalog(&arbitrary_catalog(&relations, with_matrix)).to_vec();
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            let err = decode_catalog(Bytes::copy_from_slice(&bytes[..cut]))
                .expect_err("truncated snapshot decoded successfully");
            prop_assert!(
                matches!(err, StoreError::Codec(_)),
                "expected StoreError::Codec, got {err:?}"
            );
        }

        /// Flipping an arbitrary bit anywhere in the snapshot is a
        /// codec error, never a panic and never a silently different
        /// catalog: the trailing FxHash-64 checksum covers the whole
        /// payload, and a flip inside the checksum itself mismatches
        /// the (unchanged) payload.
        #[test]
        fn bit_flips_are_always_detected(
            contents in contents_strategy(),
            pos_frac in 0.0f64..1.0,
            bit in 0u32..8,
        ) {
            let (relations, with_matrix) = contents;
            let mut bytes =
                encode_catalog(&arbitrary_catalog(&relations, with_matrix)).to_vec();
            let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
            bytes[pos] ^= 1u8 << bit;
            let err = decode_catalog(Bytes::from(bytes))
                .expect_err("corrupted snapshot decoded successfully");
            prop_assert!(
                matches!(err, StoreError::Codec(_)),
                "expected StoreError::Codec, got {err:?}"
            );
        }
    }
}
