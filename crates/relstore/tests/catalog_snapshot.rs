//! Whole-catalog snapshot persistence: encode → decode round trips,
//! including 2-D entries, with staleness reset on reload.

use bytes::Bytes;
use freqdist::zipf::zipf_frequencies;
use relstore::catalog::StatKey;
use relstore::codec::{decode_catalog, encode_catalog};
use relstore::generate::{relation_from_frequency_set, relation_from_matrix};
use relstore::Catalog;

fn populated_catalog() -> Catalog {
    let cat = Catalog::new();
    let fa = zipf_frequencies(500, 40, 1.0).unwrap();
    let ra = relation_from_frequency_set("orders", "part", &fa, 1).unwrap();
    cat.analyze_end_biased(&ra, "part", 6).unwrap();
    let fb = zipf_frequencies(300, 25, 0.5).unwrap();
    let rb = relation_from_frequency_set("stock", "part", &fb, 2).unwrap();
    cat.analyze_end_biased(&rb, "part", 4).unwrap();
    // A 2-D entry.
    let fm = zipf_frequencies(200, 12, 0.8).unwrap();
    let m = freqdist::FreqMatrix::from_arrangement(
        &fm,
        3,
        4,
        &freqdist::Arrangement::identity(12),
    )
    .unwrap();
    let rp = relation_from_matrix("emp", "dept", "year", &[1, 2, 3], &[7, 8, 9, 10], &m, 3)
        .unwrap();
    cat.analyze_matrix_end_biased(&rp, "dept", "year", 3).unwrap();
    cat
}

#[test]
fn snapshot_round_trips_every_entry() {
    let cat = populated_catalog();
    let restored = decode_catalog(encode_catalog(&cat)).unwrap();

    for key in cat.keys() {
        let original = cat.get(&key).unwrap();
        let reloaded = restored.get(&key).unwrap();
        assert_eq!(original, reloaded, "{key:?}");
    }
    let key2d = StatKey::new("emp", &["dept", "year"]);
    assert_eq!(
        cat.get_matrix(&key2d).unwrap(),
        restored.get_matrix(&key2d).unwrap()
    );
}

#[test]
fn snapshot_resets_staleness() {
    let cat = populated_catalog();
    cat.note_updates("orders", 99);
    let key = StatKey::new("orders", &["part"]);
    assert_eq!(cat.staleness(&key).unwrap(), 99);
    let restored = decode_catalog(encode_catalog(&cat)).unwrap();
    assert_eq!(restored.staleness(&key).unwrap(), 0);
}

#[test]
fn empty_catalog_round_trips() {
    let cat = Catalog::new();
    let restored = decode_catalog(encode_catalog(&cat)).unwrap();
    assert!(restored.keys().is_empty());
}

#[test]
fn snapshot_is_deterministic() {
    let a = encode_catalog(&populated_catalog());
    let b = encode_catalog(&populated_catalog());
    assert_eq!(a, b, "snapshot encoding must be order-stable");
}

#[test]
fn corrupted_snapshots_rejected() {
    let bytes = encode_catalog(&populated_catalog()).to_vec();
    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] = b'X';
    assert!(decode_catalog(Bytes::from(bad)).is_err());
    // Truncations at structural boundaries.
    for cut in [0usize, 3, 7, 20, bytes.len() - 1] {
        assert!(
            decode_catalog(Bytes::copy_from_slice(&bytes[..cut])).is_err(),
            "cut at {cut} decoded successfully"
        );
    }
    // Trailing garbage.
    let mut long = bytes.clone();
    long.push(0);
    assert!(decode_catalog(Bytes::from(long)).is_err());
}
