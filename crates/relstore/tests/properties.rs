//! Property-based tests for the relational substrate.

use freqdist::FrequencySet;
use proptest::prelude::*;
use relstore::catalog::StoredHistogram;
use relstore::codec::{decode_histogram, encode_histogram};
use relstore::generate::relation_from_frequency_set;
use relstore::join::{hash_join_count, materialize_join};
use relstore::joint::joint_frequency_table;
use relstore::sample::SpaceSaving;
use relstore::stats::frequency_table;
use vopt_hist::construct::v_opt_end_biased;

fn freqs_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..40, 1..=20)
}

proptest! {
    /// Algorithm Matrix recovers exactly the frequencies a relation was
    /// generated from (zero-frequency values excepted), and the total
    /// matches the row count.
    #[test]
    fn frequency_table_is_exact(freqs in freqs_strategy(), seed in any::<u64>()) {
        let fs = FrequencySet::new(freqs.clone());
        let rel = relation_from_frequency_set("r", "a", &fs, seed).unwrap();
        let t = frequency_table(&rel, "a").unwrap();
        prop_assert_eq!(t.frequency_set().total(), fs.total());
        for (i, &f) in freqs.iter().enumerate() {
            prop_assert_eq!(t.frequency_of(i as u64), f);
        }
    }

    /// Join cardinality is symmetric and equals both the joint-frequency
    /// product and the materialised row count.
    #[test]
    fn join_count_symmetry_and_agreement(
        fa in freqs_strategy(),
        fb in freqs_strategy(),
        seed in any::<u64>(),
    ) {
        let ra = relation_from_frequency_set("a", "k", &FrequencySet::new(fa), seed).unwrap();
        let rb = relation_from_frequency_set("b", "k", &FrequencySet::new(fb), seed ^ 1).unwrap();
        let ab = hash_join_count(&ra, "k", &rb, "k").unwrap();
        let ba = hash_join_count(&rb, "k", &ra, "k").unwrap();
        prop_assert_eq!(ab, ba);
        let joint = joint_frequency_table(&ra, "k", &rb, "k").unwrap().join_size();
        prop_assert_eq!(ab, joint);
        let mat = materialize_join(&ra, "k", &rb, "k").unwrap();
        prop_assert_eq!(ab, mat.num_rows() as u128);
    }

    /// The codec is lossless for any stored end-biased histogram.
    #[test]
    fn codec_round_trips(freqs in prop::collection::vec(0u64..1000, 2..=30), beta in 1usize..6) {
        prop_assume!(beta <= freqs.len());
        let hist = v_opt_end_biased(&freqs, beta).unwrap().histogram;
        let values: Vec<u64> = (0..freqs.len() as u64).map(|v| v * 3 + 1).collect();
        let stored = StoredHistogram::from_histogram(&values, &hist).unwrap();
        let decoded = decode_histogram(encode_histogram(&stored)).unwrap();
        prop_assert_eq!(&decoded, &stored);
        for &v in &values {
            prop_assert_eq!(decoded.approx_frequency(v), stored.approx_frequency(v));
        }
    }

    /// Truncating an encoded histogram at ANY byte boundary yields a
    /// codec error — never a panic.
    #[test]
    fn truncated_histogram_is_codec_error_not_panic(
        freqs in prop::collection::vec(0u64..1000, 2..=30),
        beta in 1usize..6,
        cut_frac in 0.0f64..1.0,
    ) {
        prop_assume!(beta <= freqs.len());
        let hist = v_opt_end_biased(&freqs, beta).unwrap().histogram;
        let values: Vec<u64> = (0..freqs.len() as u64).map(|v| v * 3 + 1).collect();
        let stored = StoredHistogram::from_histogram(&values, &hist).unwrap();
        let bytes = encode_histogram(&stored).to_vec();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let err = decode_histogram(bytes::Bytes::copy_from_slice(&bytes[..cut]))
            .expect_err("truncated histogram decoded successfully");
        prop_assert!(
            matches!(err, relstore::StoreError::Codec(_)),
            "expected StoreError::Codec, got {err:?}"
        );
    }

    /// Space-Saving bounds hold for any stream: lower ≤ truth ≤ upper.
    #[test]
    fn space_saving_bounds(stream in prop::collection::vec(0u64..15, 1..200), cap in 1usize..10) {
        let mut ss = SpaceSaving::new(cap).unwrap();
        ss.observe_all(&stream);
        for (v, upper, lower) in ss.top_k(cap) {
            let truth = stream.iter().filter(|&&x| x == v).count() as u64;
            prop_assert!(lower <= truth, "lower bound broken for {v}");
            prop_assert!(upper >= truth, "upper bound broken for {v}");
        }
        // Any value with count > N/cap must be tracked.
        let n = stream.len() as u64;
        for v in 0u64..15 {
            let truth = stream.iter().filter(|&&x| x == v).count() as u64;
            if truth > n / cap as u64 {
                prop_assert!(
                    ss.top_k(cap).iter().any(|&(x, _, _)| x == v),
                    "heavy hitter {v} (count {truth}) missing"
                );
            }
        }
    }

    /// Stored-histogram estimates over the whole domain conserve roughly
    /// the relation size (each value contributes its bucket's rounded
    /// average; rounding drifts by at most 0.5 per value).
    #[test]
    fn stored_histogram_mass_conservation(freqs in prop::collection::vec(0u64..100, 2..=25)) {
        let beta = 3.min(freqs.len());
        let hist = v_opt_end_biased(&freqs, beta).unwrap().histogram;
        let values: Vec<u64> = (0..freqs.len() as u64).collect();
        let stored = StoredHistogram::from_histogram(&values, &hist).unwrap();
        let est: u64 = values.iter().map(|&v| stored.approx_frequency(v)).sum();
        let total: u64 = freqs.iter().sum();
        prop_assert!(
            (est as i128 - total as i128).unsigned_abs() <= freqs.len() as u128,
            "estimated mass {est} vs true {total}"
        );
    }
}
