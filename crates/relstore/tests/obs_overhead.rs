//! The obs overhead contract (see `obs` crate docs): with recording
//! disabled, every instrumentation point must reduce to a relaxed atomic
//! load and a branch. This smoke test pins that down end-to-end: an
//! instrumented 1M-row Algorithm *Matrix* scan with metrics disabled
//! must stay within 5% of the wall time of the same scan with no
//! instrumentation at all.
//!
//! This file holds a single test so the global enable flag cannot race
//! with other tests in the same process.

use freqdist::zipf::zipf_frequencies;
use relstore::fxhash::{fx_map_with_capacity, FxHashMap};
use relstore::generate::relation_from_frequency_set;
use relstore::stats::frequency_table;
use relstore::Relation;
use std::time::{Duration, Instant};

const ROWS: u64 = 1_000_000;
const DISTINCT: usize = 10_000;
const TRIALS: usize = 5;

/// The exact scan loop of `frequency_table`, with zero instrumentation:
/// the uninstrumented baseline.
fn bare_frequency_table(relation: &Relation, column: &str) -> (Vec<u64>, Vec<u64>) {
    let col = relation.column_by_name(column).unwrap();
    let mut counts: FxHashMap<u64, u64> = fx_map_with_capacity(col.len().min(1 << 16));
    for &v in col {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut pairs: Vec<(u64, u64)> = counts.into_iter().collect();
    pairs.sort_unstable_by_key(|&(v, _)| v);
    pairs.into_iter().unzip()
}

fn timed(mut f: impl FnMut()) -> Duration {
    let started = Instant::now();
    f();
    started.elapsed()
}

/// Min-of-N for both variants with strictly interleaved, order-alternated
/// trials, so ambient load (the rest of the suite running in parallel)
/// hits both sides equally.
fn measure_pair(relation: &Relation) -> (Duration, Duration) {
    let mut with_obs = Duration::MAX;
    let mut without_obs = Duration::MAX;
    for round in 0..TRIALS {
        let a = || {
            std::hint::black_box(frequency_table(relation, "a").unwrap());
        };
        let b = || {
            std::hint::black_box(bare_frequency_table(relation, "a"));
        };
        if round % 2 == 0 {
            with_obs = with_obs.min(timed(a));
            without_obs = without_obs.min(timed(b));
        } else {
            without_obs = without_obs.min(timed(b));
            with_obs = with_obs.min(timed(a));
        }
    }
    (with_obs, without_obs)
}

/// Threads used by the concurrent phase.
const SCAN_THREADS: usize = 4;

/// The concurrent variant: every trial runs the scan on `SCAN_THREADS`
/// threads at once and times the whole fan-out. With the old
/// single-mutex metrics registry, disabled instrumentation still
/// serialized concurrent scans on registry probes; the sharded registry
/// must keep the instrumented fan-out within the same 5% budget as the
/// sequential path.
fn measure_pair_concurrent(relation: &Relation) -> (Duration, Duration) {
    let fan_out = |instrumented: bool| {
        std::thread::scope(|s| {
            for _ in 0..SCAN_THREADS {
                s.spawn(move || {
                    if instrumented {
                        std::hint::black_box(frequency_table(relation, "a").unwrap());
                    } else {
                        std::hint::black_box(bare_frequency_table(relation, "a"));
                    }
                });
            }
        });
    };
    let mut with_obs = Duration::MAX;
    let mut without_obs = Duration::MAX;
    for round in 0..TRIALS {
        if round % 2 == 0 {
            with_obs = with_obs.min(timed(|| fan_out(true)));
            without_obs = without_obs.min(timed(|| fan_out(false)));
        } else {
            without_obs = without_obs.min(timed(|| fan_out(false)));
            with_obs = with_obs.min(timed(|| fan_out(true)));
        }
    }
    (with_obs, without_obs)
}

/// Measures with up to two re-measurements before failing: a noisy box
/// can push a single pass past the budget for reasons unrelated to
/// instrumentation.
fn measure_with_retries(mut measure: impl FnMut() -> (Duration, Duration)) -> (Duration, Duration) {
    let mut result = measure();
    for _ in 0..2 {
        if result.0 <= result.1.mul_f64(1.05) {
            break;
        }
        result = measure();
    }
    result
}

#[test]
fn disabled_instrumentation_adds_under_five_percent() {
    let freqs = zipf_frequencies(ROWS, DISTINCT, 1.0).unwrap();
    let relation = relation_from_frequency_set("big", "a", &freqs, 7).unwrap();

    // Same scan, same answer — the baseline really is the same algorithm.
    let instrumented = frequency_table(&relation, "a").unwrap();
    let (values, bare_freqs) = bare_frequency_table(&relation, "a");
    assert_eq!(instrumented.values, values);
    assert_eq!(instrumented.freqs, bare_freqs);

    // Tracing stays fully armed: its own flag is on, so the only thing
    // standing between every trace point and a recorded event is the
    // same master switch — the disabled path must still be one relaxed
    // load + branch, within the identical 105% budget.
    obs::trace::set_trace_enabled(true);
    obs::set_enabled(false);
    let sequential = measure_with_retries(|| measure_pair(&relation));
    let concurrent = measure_with_retries(|| measure_pair_concurrent(&relation));
    obs::set_enabled(true);

    let (with_obs, without_obs) = sequential;
    assert!(
        with_obs <= without_obs.mul_f64(1.05),
        "instrumented scan {with_obs:?} exceeds 105% of bare scan {without_obs:?}"
    );
    let (with_obs, without_obs) = concurrent;
    assert!(
        with_obs <= without_obs.mul_f64(1.05),
        "{SCAN_THREADS}-thread instrumented scan {with_obs:?} exceeds 105% of bare \
         {without_obs:?} — is the metrics registry serializing concurrent readers?"
    );
}
