//! The statistics catalog (§4 storage discussion).
//!
//! Commercial systems of the paper's era (e.g. DB2's
//! `SYSIBM.SYSCOLDIST`) store per-column frequency statistics in catalog
//! tables. [`StoredHistogram`] implements the compact layout §4
//! describes: every bucket stores its (integer-rounded) average, values
//! are listed explicitly only for buckets *other than the largest*, and
//! "not finding a valid attribute value among those explicitly stored
//! implies that it belongs to the missing bucket and has that special
//! frequency". End-biased histograms make this layout tiny: β−1 listed
//! values plus two averages.
//!
//! [`Catalog`] is the concurrent registry: keyed by relation and column
//! list, with per-relation update counters so estimator code can reason
//! about staleness (the paper declares update-propagation *schedules* out
//! of scope; the counters are the hook such a schedule would use).

use crate::catalog2d::StoredMatrixHistogram;
use crate::error::{Result, StoreError};
use crate::relation::Relation;
use crate::stats::{frequency_matrix_table, frequency_table, FrequencyTable};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use vopt_hist::feedback::{tune_step, TuneConfig, TuneSkip};
use vopt_hist::{BuilderSpec, Histogram, MatrixHistogram, ValueBounds};

/// A histogram in the paper's compact catalog layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredHistogram {
    /// Paper-rounded average frequency per bucket.
    bucket_avgs: Vec<u64>,
    /// The bucket whose values are *not* listed (the largest bucket).
    default_bucket: u32,
    /// `(domain value, bucket)` for every value outside the default
    /// bucket, sorted by value for binary search.
    exceptions: Vec<(u64, u32)>,
    /// Per-bucket value span `[lo, hi)` and distinct-count, parallel to
    /// `bucket_avgs` — what range and band estimation interpolate over.
    bounds: Vec<ValueBounds>,
}

impl StoredHistogram {
    /// Converts an analysis [`Histogram`] plus the domain values it was
    /// built over into the compact catalog form.
    ///
    /// `values[i]` is the domain value of histogram value-index `i`.
    pub fn from_histogram(values: &[u64], hist: &Histogram) -> Result<Self> {
        if values.len() != hist.num_values() {
            return Err(StoreError::InvalidParameter(format!(
                "{} domain values but histogram covers {}",
                values.len(),
                hist.num_values()
            )));
        }
        let bucket_avgs: Vec<u64> = hist.buckets().iter().map(|b| b.average_rounded()).collect();
        let default_bucket = hist
            .buckets()
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.count())
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        let mut exceptions: Vec<(u64, u32)> = values
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| {
                let b = hist.bucket_of(i);
                (b != default_bucket).then_some((v, b))
            })
            .collect();
        exceptions.sort_unstable_by_key(|&(v, _)| v);
        let bounds = if hist.bounds().len() == hist.num_buckets() {
            // An ANALYZE-built histogram already carries its spans.
            hist.bounds().to_vec()
        } else {
            // Bounds never attached (raw construction paths): derive
            // them from the assignment here so every stored histogram
            // supports range interpolation.
            let mut bounds = vec![
                ValueBounds {
                    lo: u64::MAX,
                    hi: 0,
                    distinct: 0,
                };
                hist.num_buckets()
            ];
            for (i, &v) in values.iter().enumerate() {
                let bb = &mut bounds[hist.bucket_of(i) as usize];
                bb.lo = bb.lo.min(v);
                bb.hi = bb.hi.max(v.saturating_add(1));
                bb.distinct += 1;
            }
            bounds
        };
        Ok(Self {
            bucket_avgs,
            default_bucket,
            exceptions,
            bounds,
        })
    }

    /// Reassembles a stored histogram from its raw parts (used by the
    /// binary codec). Validates bucket references, exception order, and
    /// that every bucket's value span is well-formed.
    pub fn from_parts(
        bucket_avgs: Vec<u64>,
        default_bucket: u32,
        exceptions: Vec<(u64, u32)>,
        bounds: Vec<ValueBounds>,
    ) -> Result<Self> {
        let n = bucket_avgs.len();
        if n == 0 {
            return Err(StoreError::InvalidParameter(
                "a stored histogram needs at least one bucket".into(),
            ));
        }
        if (default_bucket as usize) >= n {
            return Err(StoreError::InvalidParameter(format!(
                "default bucket {default_bucket} out of range 0..{n}"
            )));
        }
        for w in exceptions.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(StoreError::InvalidParameter(
                    "exception values must be strictly increasing".into(),
                ));
            }
        }
        if let Some(&(v, b)) = exceptions.iter().find(|&&(_, b)| (b as usize) >= n) {
            return Err(StoreError::InvalidParameter(format!(
                "exception value {v} references bucket {b} out of range 0..{n}"
            )));
        }
        if bounds.len() != n {
            return Err(StoreError::InvalidParameter(format!(
                "{} value spans for {n} buckets",
                bounds.len()
            )));
        }
        if let Some((b, bb)) = bounds
            .iter()
            .enumerate()
            .find(|(_, bb)| !bb.is_well_formed())
        {
            return Err(StoreError::InvalidParameter(format!(
                "bucket {b} has a malformed value span [{}, {}) with {} distinct",
                bb.lo, bb.hi, bb.distinct
            )));
        }
        Ok(Self {
            bucket_avgs,
            default_bucket,
            exceptions,
            bounds,
        })
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bucket_avgs.len()
    }

    /// Bucket averages (paper-rounded).
    pub fn bucket_avgs(&self) -> &[u64] {
        &self.bucket_avgs
    }

    /// The implicit bucket id.
    pub fn default_bucket(&self) -> u32 {
        self.default_bucket
    }

    /// Explicitly listed `(value, bucket)` pairs.
    pub fn exceptions(&self) -> &[(u64, u32)] {
        &self.exceptions
    }

    /// Per-bucket value spans, parallel to [`StoredHistogram::bucket_avgs`].
    pub fn bounds(&self) -> &[ValueBounds] {
        &self.bounds
    }

    /// The value span of bucket `b`.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    pub fn bucket_bounds(&self, b: usize) -> &ValueBounds {
        &self.bounds[b]
    }

    /// The approximate frequency of a domain value: the average of its
    /// listed bucket, or the default bucket's average when unlisted.
    pub fn approx_frequency(&self, value: u64) -> u64 {
        match self.exceptions.binary_search_by_key(&value, |&(v, _)| v) {
            Ok(i) => self.bucket_avgs[self.exceptions[i].1 as usize],
            Err(_) => self.bucket_avgs[self.default_bucket as usize],
        }
    }

    /// Catalog entries consumed: one per bucket average plus one per
    /// listed value (the §4 storage cost this layout optimises).
    pub fn storage_entries(&self) -> usize {
        self.bucket_avgs.len() + self.exceptions.len()
    }
}

/// A stage of the scan → build → store ANALYZE pipeline, announced to
/// the hook of [`Catalog::analyze_with_hook`] just before the stage
/// runs. Failpoint layers (the oracle's fault injection) return an
/// error from the hook to abort the refresh mid-flight; the catalog
/// guarantees an aborted refresh leaves the previous entry — and the
/// relation's staleness accounting — untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshStage {
    /// About to scan the relation (Algorithm *Matrix*).
    BeforeScan,
    /// Scan complete; about to build the histogram and store it.
    BeforeStore,
}

/// Key of a catalog entry: relation name plus the column list the
/// statistics cover.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StatKey {
    /// Relation name.
    pub relation: String,
    /// Attribute(s) the histogram covers, in order.
    pub columns: Vec<String>,
}

impl StatKey {
    /// Builds a key.
    pub fn new(relation: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            relation: relation.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
        }
    }

    /// Human-readable `relation(col, ...)` form used in error messages,
    /// metrics labels, and daemon traces.
    pub fn display(&self) -> String {
        format!("{}({})", self.relation, self.columns.join(", "))
    }
}

#[derive(Debug, Clone)]
struct Entry {
    histogram: StoredHistogram,
    built_at_version: u64,
    /// How the histogram was built (None for raw `put`s, e.g. snapshots
    /// from codec versions that predate spec recording).
    spec: Option<BuilderSpec>,
    /// Feedback tune steps applied since the histogram was last fully
    /// (re)built. Like the per-relation version counters, this is *not*
    /// part of the persisted snapshot format: after recovery it counts
    /// tunes replayed from the journal since the last checkpoint, which
    /// is exactly the "has this state diverged from a full build"
    /// signal the provenance trail and `histctl tune --status` report.
    tuned: u64,
}

#[derive(Debug, Clone)]
struct MatrixEntry {
    histogram: StoredMatrixHistogram,
    built_at_version: u64,
    spec: Option<BuilderSpec>,
}

/// What one applied feedback tune step did — the observability payload
/// of [`CatalogSnapshot::compute_tune`], fed to the `tune_applied_total`
/// counter, the `qerror_pre`/`qerror_post` gauges, and daemon traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Frequency mass moved between buckets (exactly conserved).
    pub mass_moved: u64,
    /// Q-error of the observation before the step.
    pub qerror_pre: f64,
    /// Q-error the tuned bucket would produce against the same
    /// observation.
    pub qerror_post: f64,
    /// Whether the step also split/merged buckets.
    pub restructured: bool,
}

/// The failure history of a catalog entry's refresh pipeline: how many
/// consecutive rebuilds have failed and what the last error said. A
/// successful store clears the record, so `count` is always the length
/// of the *current* failure streak — exactly what a circuit breaker
/// trips on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshFailure {
    /// Consecutive failed refreshes since the last successful store.
    pub count: u64,
    /// The error string of the most recent failure.
    pub last_error: String,
}

/// An immutable, epoch-stamped view of the entire catalog.
///
/// Readers obtain one via [`Catalog::read_snapshot`] and then run any
/// number of lookups against a single consistent state: a published
/// snapshot never changes, so a multi-column read can never observe one
/// column from before a mutation and another from after it, and it
/// never contends with writers. The epoch increases by exactly one per
/// catalog mutation, which makes it a free invalidation token — a value
/// derived from a snapshot is current iff its recorded epoch equals the
/// catalog's current epoch (the engine's estimation cache keys on it).
#[derive(Debug, Clone, Default)]
pub struct CatalogSnapshot {
    epoch: u64,
    entries: HashMap<StatKey, Arc<Entry>>,
    /// Attribute-pair statistics (2-D histograms), in their own
    /// namespace, as systems keep single- and multi-column distribution
    /// statistics in distinct catalog tables.
    matrix_entries: HashMap<StatKey, Arc<MatrixEntry>>,
    /// Updates observed per relation since catalog creation.
    versions: HashMap<String, u64>,
    /// Refresh-failure streaks per key (cleared by a successful store).
    /// Kept beside the entries rather than inside them so a column
    /// whose *first* ANALYZE fails — no entry exists yet — still has a
    /// failure history for the maintenance daemon's breaker to read.
    failures: HashMap<StatKey, RefreshFailure>,
}

impl CatalogSnapshot {
    /// The mutation count of the catalog at the instant this snapshot
    /// was published. Strictly monotone across snapshots of one catalog.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Fetches a histogram by reference — no clone, no lock.
    pub fn get(&self, key: &StatKey) -> Result<&StoredHistogram> {
        match self.entries.get(key) {
            Some(e) => {
                obs::counter("catalog_get_hit_total").inc();
                if self.version_of(&key.relation) > e.built_at_version {
                    obs::counter("catalog_get_stale_total").inc();
                }
                Ok(&e.histogram)
            }
            None => {
                obs::counter("catalog_get_miss_total").inc();
                Err(StoreError::MissingStatistics { key: key.display() })
            }
        }
    }

    /// Fetches a 2-D histogram by reference.
    pub fn get_matrix(&self, key: &StatKey) -> Result<&StoredMatrixHistogram> {
        match self.matrix_entries.get(key) {
            Some(e) => {
                obs::counter("catalog_get_hit_total").inc();
                if self.version_of(&key.relation) > e.built_at_version {
                    obs::counter("catalog_get_stale_total").inc();
                }
                Ok(&e.histogram)
            }
            None => {
                obs::counter("catalog_get_miss_total").inc();
                Err(StoreError::MissingStatistics { key: key.display() })
            }
        }
    }

    /// Updates `relation` has seen since the stored histogram was built
    /// (saturating, see [`Catalog::staleness`]).
    pub fn staleness(&self, key: &StatKey) -> Result<u64> {
        let entry = self
            .entries
            .get(key)
            .ok_or_else(|| StoreError::MissingStatistics { key: key.display() })?;
        Ok(self
            .version_of(&key.relation)
            .saturating_sub(entry.built_at_version))
    }

    /// Staleness of a 2-D histogram (saturating).
    pub fn matrix_staleness(&self, key: &StatKey) -> Result<u64> {
        let entry = self
            .matrix_entries
            .get(key)
            .ok_or_else(|| StoreError::MissingStatistics { key: key.display() })?;
        Ok(self
            .version_of(&key.relation)
            .saturating_sub(entry.built_at_version))
    }

    /// The update counter of `relation` (0 if never updated).
    pub fn version_of(&self, relation: &str) -> u64 {
        self.versions.get(relation).copied().unwrap_or(0)
    }

    /// The current refresh-failure streak of `key`, if any.
    pub fn refresh_failure(&self, key: &StatKey) -> Option<&RefreshFailure> {
        self.failures.get(key)
    }

    /// Every key with a live failure streak, sorted by `(relation,
    /// columns)` for deterministic exposition.
    pub fn refresh_failures(&self) -> Vec<(StatKey, RefreshFailure)> {
        let mut all: Vec<(StatKey, RefreshFailure)> = self
            .failures
            .iter()
            .map(|(k, f)| (k.clone(), f.clone()))
            .collect();
        all.sort_by(|a, b| (&a.0.relation, &a.0.columns).cmp(&(&b.0.relation, &b.0.columns)));
        all
    }

    /// The spec a 1-D entry's histogram was built with, if recorded.
    pub fn spec_of(&self, key: &StatKey) -> Option<BuilderSpec> {
        self.entries.get(key).and_then(|e| e.spec)
    }

    /// The spec a 2-D entry's histogram was built with, if recorded.
    pub fn matrix_spec_of(&self, key: &StatKey) -> Option<BuilderSpec> {
        self.matrix_entries.get(key).and_then(|e| e.spec)
    }

    /// Feedback tune steps applied to `key`'s histogram since it was
    /// last fully (re)built (0 for missing entries, and for entries a
    /// full ANALYZE/`put` just replaced). See the field note on `Entry`:
    /// after crash recovery this counts tunes replayed from the journal
    /// since the last checkpoint.
    pub fn tuned_count(&self, key: &StatKey) -> u64 {
        self.entries.get(key).map(|e| e.tuned).unwrap_or(0)
    }

    /// Computes — without mutating anything — the tuned histogram one
    /// (estimate, actual) feedback observation produces for `key`,
    /// delegating the mass-conserving update rule to
    /// [`vopt_hist::feedback::tune_step`]. The β budget is the bucket
    /// count of the entry's recorded [`BuilderSpec`], falling back to
    /// the histogram's current bucket count for spec-less entries.
    ///
    /// The outer `Result` is "does the entry exist"; the inner one is
    /// the tuner's applied-or-skipped verdict.
    pub fn compute_tune(
        &self,
        key: &StatKey,
        estimate: f64,
        actual: f64,
        cfg: &TuneConfig,
    ) -> Result<std::result::Result<(StoredHistogram, TuneReport), TuneSkip>> {
        let entry = self
            .entries
            .get(key)
            .ok_or_else(|| StoreError::MissingStatistics { key: key.display() })?;
        let hist = &entry.histogram;
        let beta = entry
            .spec
            .map(|s| s.buckets())
            .unwrap_or_else(|| hist.num_buckets());
        let delta = match tune_step(
            hist.bucket_avgs(),
            hist.default_bucket(),
            hist.exceptions(),
            hist.bounds(),
            estimate,
            actual,
            beta,
            cfg,
        ) {
            Ok(delta) => delta,
            Err(skip) => return Ok(Err(skip)),
        };
        let report = TuneReport {
            mass_moved: delta.mass_moved,
            qerror_pre: delta.qerror_pre,
            qerror_post: delta.qerror_post,
            restructured: delta.restructured,
        };
        let tuned = StoredHistogram::from_parts(
            delta.bucket_avgs,
            delta.default_bucket,
            delta.exceptions,
            delta.bounds,
        )?;
        Ok(Ok((tuned, report)))
    }

    /// All keys currently stored, in unspecified order.
    pub fn keys(&self) -> Vec<StatKey> {
        self.entries.keys().cloned().collect()
    }

    /// A snapshot of every 1-D entry (for persistence), sorted by
    /// `(relation, columns)` so the encoding is order-stable regardless
    /// of insertion order.
    pub fn snapshot_1d(&self) -> Vec<(StatKey, StoredHistogram, Option<BuilderSpec>)> {
        let _span = obs::span("catalog_snapshot_1d");
        let mut all: Vec<(StatKey, StoredHistogram, Option<BuilderSpec>)> = self
            .entries
            .iter()
            .map(|(k, e)| (k.clone(), e.histogram.clone(), e.spec))
            .collect();
        all.sort_by(|a, b| (&a.0.relation, &a.0.columns).cmp(&(&b.0.relation, &b.0.columns)));
        all
    }

    /// A snapshot of every 2-D entry, sorted like
    /// [`CatalogSnapshot::snapshot_1d`].
    pub fn snapshot_2d(&self) -> Vec<(StatKey, StoredMatrixHistogram, Option<BuilderSpec>)> {
        let _span = obs::span("catalog_snapshot_2d");
        let mut all: Vec<(StatKey, StoredMatrixHistogram, Option<BuilderSpec>)> = self
            .matrix_entries
            .iter()
            .map(|(k, e)| (k.clone(), e.histogram.clone(), e.spec))
            .collect();
        all.sort_by(|a, b| (&a.0.relation, &a.0.columns).cmp(&(&b.0.relation, &b.0.columns)));
        all
    }

    /// Every per-relation update counter, sorted by relation name.
    pub fn version_snapshot(&self) -> Vec<(String, u64)> {
        let mut all: Vec<(String, u64)> =
            self.versions.iter().map(|(r, &v)| (r.clone(), v)).collect();
        all.sort();
        all
    }
}

/// A concurrent statistics catalog.
///
/// Internally a read-copy-update cell over [`CatalogSnapshot`]: every
/// mutation clones the current snapshot (entries are `Arc`-shared, so
/// the clone is shallow), applies itself, bumps the epoch, and swaps
/// the new snapshot in under a short write lock. Readers only ever take
/// the read lock for the duration of one `Arc` clone, so lookups never
/// wait on a scan, a build, or the maintenance daemon.
#[derive(Debug, Default)]
pub struct Catalog {
    current: RwLock<Arc<CatalogSnapshot>>,
    /// Serializes mutations so two concurrent writers each see the
    /// other's effects (plain RCU would lose one of them).
    mutate: Mutex<()>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch-stamped snapshot. O(1): one `Arc` clone under
    /// a read lock held for no other work.
    pub fn read_snapshot(&self) -> Arc<CatalogSnapshot> {
        Arc::clone(&self.current.read())
    }

    /// The catalog's current epoch (its mutation count).
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// Runs one mutation: clone-shallow the current snapshot, bump the
    /// epoch, let `f` edit the clone, publish. The `mutate` lock makes
    /// the read-modify-write atomic; the write lock on `current` is
    /// held only for the pointer swap.
    fn mutate<R>(&self, f: impl FnOnce(&mut CatalogSnapshot) -> R) -> R {
        let _guard = self.mutate.lock();
        let mut next = CatalogSnapshot::clone(&self.current.read());
        next.epoch += 1;
        let out = f(&mut next);
        obs::gauge("catalog_epoch").set(next.epoch as f64);
        *self.current.write() = Arc::new(next);
        out
    }

    /// Stores a histogram for `key`, stamping it with the relation's
    /// current update version. The construction spec is left unrecorded;
    /// prefer [`Catalog::put_with_spec`] (or the ANALYZE entry points)
    /// so snapshots can say how the histogram was built.
    pub fn put(&self, key: StatKey, histogram: StoredHistogram) {
        self.put_with_spec(key, histogram, None);
    }

    /// Stores a histogram along with the [`BuilderSpec`] that built it.
    pub fn put_with_spec(
        &self,
        key: StatKey,
        histogram: StoredHistogram,
        spec: Option<BuilderSpec>,
    ) {
        self.put_all_with_spec(vec![(key, histogram, spec)]);
    }

    /// Stores a batch of histograms in one mutation (one epoch bump,
    /// one snapshot publication). Readers — and the engine's estimation
    /// cache — observe either none or all of the batch, which is what
    /// lets a multi-column ANALYZE stay atomic from the read path's
    /// point of view.
    pub fn put_all_with_spec(&self, items: Vec<(StatKey, StoredHistogram, Option<BuilderSpec>)>) {
        if items.is_empty() {
            return;
        }
        self.mutate(|snap| {
            for (key, histogram, spec) in items {
                obs::counter("catalog_put_total").inc();
                let version = snap.version_of(&key.relation);
                snap.failures.remove(&key);
                snap.entries.insert(
                    key,
                    Arc::new(Entry {
                        histogram,
                        built_at_version: version,
                        spec,
                        tuned: 0,
                    }),
                );
            }
        });
    }

    /// Replaces `key`'s histogram with a feedback-tuned successor,
    /// growing the entry's tune counter while keeping its build stamp
    /// and spec: tuning refines the *existing* build, it is not a new
    /// one, so staleness accounting and refresh scheduling are
    /// unaffected. This is the single mutation point for feedback —
    /// every tuned histogram enters the catalog here (live via
    /// `DurableCatalog::tune_column`, or replayed from a WAL tune
    /// record during recovery). Errors if no entry exists: feedback
    /// can refine statistics, never invent them.
    pub fn apply_tune(&self, key: &StatKey, histogram: StoredHistogram) -> Result<()> {
        self.mutate(|snap| {
            let entry = snap
                .entries
                .get(key)
                .ok_or_else(|| StoreError::MissingStatistics { key: key.display() })?;
            let mut next = Entry::clone(entry);
            next.histogram = histogram;
            next.tuned = next.tuned.saturating_add(1);
            snap.entries.insert(key.clone(), Arc::new(next));
            Ok(())
        })
    }

    /// Feedback tune steps applied to `key` since its last full build.
    pub fn tuned_count(&self, key: &StatKey) -> u64 {
        self.read_snapshot().tuned_count(key)
    }

    /// Snapshot-read convenience for [`CatalogSnapshot::compute_tune`].
    pub fn compute_tune(
        &self,
        key: &StatKey,
        estimate: f64,
        actual: f64,
        cfg: &TuneConfig,
    ) -> Result<std::result::Result<(StoredHistogram, TuneReport), TuneSkip>> {
        self.read_snapshot()
            .compute_tune(key, estimate, actual, cfg)
    }

    /// Records that a refresh (or first ANALYZE) of `key` failed with
    /// `error`, growing the entry's consecutive-failure streak. The
    /// streak is what the maintenance daemon's circuit breaker counts
    /// and what `histctl metrics` exposes; a successful store clears it.
    pub fn note_refresh_failure(&self, key: &StatKey, error: &str) {
        obs::counter("catalog_refresh_failure_total").inc();
        self.mutate(|snap| {
            let record = snap.failures.entry(key.clone()).or_insert(RefreshFailure {
                count: 0,
                last_error: String::new(),
            });
            record.count = record.count.saturating_add(1);
            record.last_error = error.to_string();
        });
    }

    /// The current refresh-failure streak of `key`, if any.
    pub fn refresh_failure(&self, key: &StatKey) -> Option<RefreshFailure> {
        self.read_snapshot().refresh_failure(key).cloned()
    }

    /// Every key with a live failure streak, sorted by `(relation,
    /// columns)` for deterministic exposition.
    pub fn refresh_failures(&self) -> Vec<(StatKey, RefreshFailure)> {
        self.read_snapshot().refresh_failures()
    }

    /// The spec a 1-D entry's histogram was built with, if recorded.
    pub fn spec_of(&self, key: &StatKey) -> Option<BuilderSpec> {
        self.read_snapshot().spec_of(key)
    }

    /// The spec a 2-D entry's histogram was built with, if recorded.
    pub fn matrix_spec_of(&self, key: &StatKey) -> Option<BuilderSpec> {
        self.read_snapshot().matrix_spec_of(key)
    }

    /// Fetches a histogram (cloned; hot paths should prefer
    /// [`Catalog::read_snapshot`] and borrow instead).
    pub fn get(&self, key: &StatKey) -> Result<StoredHistogram> {
        self.read_snapshot().get(key).cloned()
    }

    /// Records that `updates` tuples changed in `relation` (insert,
    /// delete, or modify). Histograms built before these updates become
    /// stale. Saturating: a counter at `u64::MAX` pins there instead of
    /// wrapping (which would make every histogram look freshly built).
    pub fn note_updates(&self, relation: &str, updates: u64) {
        self.mutate(|snap| {
            let counter = snap.versions.entry(relation.to_string()).or_insert(0);
            *counter = counter.saturating_add(updates);
        });
    }

    /// How many updates `relation` has seen since the stored histogram
    /// was built. Saturating: an entry stamped *ahead* of the current
    /// version counter (possible after a journal recovery rebuilt the
    /// counters) reads as staleness 0, never as a huge wrapped value.
    pub fn staleness(&self, key: &StatKey) -> Result<u64> {
        self.read_snapshot().staleness(key)
    }

    /// All keys currently stored, in unspecified order.
    pub fn keys(&self) -> Vec<StatKey> {
        self.read_snapshot().keys()
    }

    /// A snapshot of every 1-D entry (for persistence), sorted by
    /// `(relation, columns)` so the encoding is order-stable regardless
    /// of insertion order — parallel and sequential ANALYZE produce
    /// byte-identical snapshots.
    pub fn snapshot_1d(&self) -> Vec<(StatKey, StoredHistogram, Option<BuilderSpec>)> {
        self.read_snapshot().snapshot_1d()
    }

    /// A snapshot of every 2-D entry (for persistence), sorted like
    /// [`Catalog::snapshot_1d`].
    pub fn snapshot_2d(&self) -> Vec<(StatKey, StoredMatrixHistogram, Option<BuilderSpec>)> {
        self.read_snapshot().snapshot_2d()
    }

    /// Every per-relation update counter, sorted by relation name.
    /// Together with the VOHG snapshot bytes this pins the catalog's
    /// full observable state — the crash-recovery oracle compares both
    /// against the pre- and post-fault committed states.
    pub fn version_snapshot(&self) -> Vec<(String, u64)> {
        self.read_snapshot().version_snapshot()
    }

    /// Estimation-quality aggregates recorded (via
    /// [`obs::record_quality`]) for relations this catalog holds
    /// statistics on. Scopes follow the `<relation>/<histogram class>`
    /// convention, so the filter matches on the leading path component.
    pub fn quality_report(&self) -> Vec<(String, obs::QualitySnapshot)> {
        let snap = self.read_snapshot();
        let mut relations: std::collections::HashSet<String> =
            snap.entries.keys().map(|k| k.relation.clone()).collect();
        relations.extend(snap.matrix_entries.keys().map(|k| k.relation.clone()));
        obs::quality::snapshot_all()
            .into_iter()
            .filter(|(scope, _)| {
                scope
                    .split('/')
                    .next()
                    .is_some_and(|r| relations.contains(r))
            })
            .collect()
    }

    /// The build step of the unified ANALYZE pipeline: a collected
    /// frequency table plus a [`BuilderSpec`] become a compact
    /// [`StoredHistogram`]. The bucket budget is clamped to the column's
    /// distinct-value count (the spec's forgiving `build`).
    ///
    /// Exposed so callers that already hold a scan result (the engine's
    /// parallel catalog-wide ANALYZE) run the exact same build as
    /// [`Catalog::analyze`].
    pub fn build_stored(table: &FrequencyTable, spec: BuilderSpec) -> Result<StoredHistogram> {
        let hist = spec.build_with_values(&table.values, &table.freqs)?;
        StoredHistogram::from_histogram(&table.values, &hist)
    }

    /// End-to-end ANALYZE for one column: runs Algorithm *Matrix* over
    /// the relation (scan → frequency table), builds the histogram the
    /// spec describes, and stores it with the spec recorded. Returns the
    /// key. This is the single construction pipeline every layer
    /// (maintenance, engine, CLIs) routes through.
    pub fn analyze(&self, relation: &Relation, column: &str, spec: BuilderSpec) -> Result<StatKey> {
        self.analyze_with_hook(relation, column, spec, &mut |_| Ok(()))
    }

    /// [`Catalog::analyze`] with a stage hook: `hook` is called with
    /// each [`RefreshStage`] before that stage runs, and an `Err` from
    /// it aborts the ANALYZE at that point. Nothing is stored unless
    /// every stage completes, so an aborted refresh leaves the previous
    /// histogram (if any) readable and the staleness counter unreset —
    /// the failure mode production maintenance daemons must have.
    pub fn analyze_with_hook(
        &self,
        relation: &Relation,
        column: &str,
        spec: BuilderSpec,
        hook: &mut dyn FnMut(RefreshStage) -> Result<()>,
    ) -> Result<StatKey> {
        let _span = obs::span("analyze");
        hook(RefreshStage::BeforeScan)?;
        let table = frequency_table(relation, column)?;
        hook(RefreshStage::BeforeStore)?;
        let stored = Self::build_stored(&table, spec)?;
        let key = StatKey::new(relation.name(), &[column]);
        self.put_with_spec(key.clone(), stored, Some(spec));
        Ok(key)
    }

    /// [`Catalog::analyze`] with the paper's recommended practical
    /// choice, the v-optimal end-biased histogram with `buckets` buckets.
    pub fn analyze_end_biased(
        &self,
        relation: &Relation,
        column: &str,
        buckets: usize,
    ) -> Result<StatKey> {
        self.analyze(relation, column, BuilderSpec::VOptEndBiased(buckets))
    }

    /// Stores a 2-D histogram for an attribute pair (spec unrecorded;
    /// prefer [`Catalog::put_matrix_with_spec`]).
    pub fn put_matrix(&self, key: StatKey, histogram: StoredMatrixHistogram) {
        self.put_matrix_with_spec(key, histogram, None);
    }

    /// Stores a 2-D histogram along with the per-cell-vector
    /// [`BuilderSpec`] that built it.
    pub fn put_matrix_with_spec(
        &self,
        key: StatKey,
        histogram: StoredMatrixHistogram,
        spec: Option<BuilderSpec>,
    ) {
        obs::counter("catalog_put_total").inc();
        self.mutate(|snap| {
            let version = snap.version_of(&key.relation);
            snap.failures.remove(&key);
            snap.matrix_entries.insert(
                key,
                Arc::new(MatrixEntry {
                    histogram,
                    built_at_version: version,
                    spec,
                }),
            );
        });
    }

    /// Fetches a 2-D histogram (cloned; hot paths should prefer
    /// [`Catalog::read_snapshot`] and borrow instead).
    pub fn get_matrix(&self, key: &StatKey) -> Result<StoredMatrixHistogram> {
        self.read_snapshot().get_matrix(key).cloned()
    }

    /// Staleness of a 2-D histogram (saturating, like
    /// [`Catalog::staleness`]).
    pub fn matrix_staleness(&self, key: &StatKey) -> Result<u64> {
        self.read_snapshot().matrix_staleness(key)
    }

    /// End-to-end ANALYZE for an attribute pair: collects the frequency
    /// matrix (Algorithm *Matrix* on pairs), builds the spec's histogram
    /// over its cell vector, and stores it with the spec recorded.
    pub fn analyze_matrix(
        &self,
        relation: &Relation,
        first: &str,
        second: &str,
        spec: BuilderSpec,
    ) -> Result<StatKey> {
        let _span = obs::span("analyze_matrix");
        let table = frequency_matrix_table(relation, first, second)?;
        let hist = MatrixHistogram::build(&table.matrix, |cells| spec.build(cells))?;
        let stored = StoredMatrixHistogram::from_matrix_histogram(
            &table.row_values,
            &table.col_values,
            &hist,
        )?;
        let key = StatKey::new(relation.name(), &[first, second]);
        self.put_matrix_with_spec(key.clone(), stored, Some(spec));
        Ok(key)
    }

    /// [`Catalog::analyze_matrix`] with the v-optimal end-biased spec.
    pub fn analyze_matrix_end_biased(
        &self,
        relation: &Relation,
        first: &str,
        second: &str,
        buckets: usize,
    ) -> Result<StatKey> {
        self.analyze_matrix(relation, first, second, BuilderSpec::VOptEndBiased(buckets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::relation_from_frequency_set;
    use freqdist::FrequencySet;
    use vopt_hist::construct::end_biased;
    use vopt_hist::RoundingMode;

    #[test]
    fn stored_histogram_round_trips_approximations() {
        let freqs = [90u64, 10, 9, 8, 2];
        let values = [100u64, 200, 300, 400, 500];
        let hist = end_biased(&freqs, 1, 1).unwrap();
        let stored = StoredHistogram::from_histogram(&values, &hist).unwrap();
        for (i, &v) in values.iter().enumerate() {
            let expected = hist.approx_frequency(i, RoundingMode::PaperRounded) as u64;
            assert_eq!(stored.approx_frequency(v), expected, "value {v}");
        }
        // Unknown values fall into the default (largest) bucket.
        assert_eq!(
            stored.approx_frequency(9999),
            stored.bucket_avgs()[stored.default_bucket() as usize]
        );
    }

    #[test]
    fn storage_cost_is_beta_minus_one_values_for_end_biased() {
        let freqs = [90u64, 10, 9, 8, 2, 3, 4, 5];
        let hist = end_biased(&freqs, 2, 1).unwrap();
        let values: Vec<u64> = (0..8).collect();
        let stored = StoredHistogram::from_histogram(&values, &hist).unwrap();
        // 4 buckets (3 singletons + pool) + 3 listed values.
        assert_eq!(stored.storage_entries(), 4 + 3);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let hist = end_biased(&[1, 2, 3], 1, 0).unwrap();
        assert!(StoredHistogram::from_histogram(&[1, 2], &hist).is_err());
    }

    #[test]
    fn from_histogram_derives_bounds_when_unattached() {
        let freqs = [90u64, 10, 9, 8, 2];
        let values = [100u64, 200, 300, 400, 500];
        let hist = end_biased(&freqs, 1, 1).unwrap();
        let stored = StoredHistogram::from_histogram(&values, &hist).unwrap();
        assert_eq!(stored.bounds().len(), stored.num_buckets());
        let total: u64 = stored.bounds().iter().map(|b| b.distinct).sum();
        assert_eq!(total as usize, values.len());
        assert!(stored.bounds().iter().all(ValueBounds::is_well_formed));
        // Attached bounds (the ANALYZE path) must agree exactly.
        let mut attached = end_biased(&freqs, 1, 1).unwrap();
        attached.attach_bounds(&values).unwrap();
        let stored2 = StoredHistogram::from_histogram(&values, &attached).unwrap();
        assert_eq!(stored, stored2);
    }

    #[test]
    fn from_parts_validates_bounds() {
        let good = vec![
            ValueBounds {
                lo: 1,
                hi: 4,
                distinct: 2,
            },
            ValueBounds {
                lo: 9,
                hi: 10,
                distinct: 1,
            },
        ];
        assert!(StoredHistogram::from_parts(vec![5, 7], 0, vec![(9, 1)], good.clone()).is_ok());
        // Wrong arity.
        assert!(
            StoredHistogram::from_parts(vec![5, 7], 0, vec![(9, 1)], good[..1].to_vec()).is_err()
        );
        // Empty span.
        let mut bad = good.clone();
        bad[1].hi = 9;
        assert!(StoredHistogram::from_parts(vec![5, 7], 0, vec![(9, 1)], bad).is_err());
        // Distinct exceeds span width.
        let mut bad = good;
        bad[0].distinct = 5;
        assert!(StoredHistogram::from_parts(vec![5, 7], 0, vec![(9, 1)], bad).is_err());
    }

    #[test]
    fn catalog_put_get_and_miss() {
        let cat = Catalog::new();
        let key = StatKey::new("orders", &["customer_id"]);
        assert!(matches!(
            cat.get(&key),
            Err(StoreError::MissingStatistics { .. })
        ));
        let hist = end_biased(&[5, 5, 50], 1, 0).unwrap();
        let stored = StoredHistogram::from_histogram(&[1, 2, 3], &hist).unwrap();
        cat.put(key.clone(), stored.clone());
        assert_eq!(cat.get(&key).unwrap(), stored);
        assert_eq!(cat.keys(), vec![key]);
    }

    #[test]
    fn staleness_tracks_updates_since_build() {
        let cat = Catalog::new();
        let key = StatKey::new("r", &["a"]);
        cat.note_updates("r", 5);
        let hist = end_biased(&[1, 2], 1, 0).unwrap();
        cat.put(
            key.clone(),
            StoredHistogram::from_histogram(&[10, 20], &hist).unwrap(),
        );
        assert_eq!(cat.staleness(&key).unwrap(), 0);
        cat.note_updates("r", 3);
        assert_eq!(cat.staleness(&key).unwrap(), 3);
        // Other relations don't interfere.
        cat.note_updates("s", 100);
        assert_eq!(cat.staleness(&key).unwrap(), 3);
    }

    #[test]
    fn note_updates_saturates_at_u64_max() {
        let cat = Catalog::new();
        let key = StatKey::new("r", &["a"]);
        let hist = end_biased(&[1, 2], 1, 0).unwrap();
        cat.put(
            key.clone(),
            StoredHistogram::from_histogram(&[10, 20], &hist).unwrap(),
        );
        cat.note_updates("r", u64::MAX);
        // A further update must pin at MAX, not wrap to a tiny counter
        // that would make the histogram look freshly built.
        cat.note_updates("r", u64::MAX);
        cat.note_updates("r", 1);
        assert_eq!(cat.staleness(&key).unwrap(), u64::MAX);
        assert_eq!(cat.version_snapshot(), vec![("r".to_string(), u64::MAX)]);
    }

    #[test]
    fn staleness_saturates_when_entry_is_ahead_of_counter() {
        let cat = Catalog::new();
        let key = StatKey::new("r", &["a"]);
        cat.note_updates("r", u64::MAX);
        let hist = end_biased(&[1, 2], 1, 0).unwrap();
        cat.put(
            key.clone(),
            StoredHistogram::from_histogram(&[10, 20], &hist).unwrap(),
        );
        // Entry stamped at MAX while a recovered counter restarts at 0:
        // simulate by a fresh catalog sharing the entry's stamp.
        assert_eq!(cat.staleness(&key).unwrap(), 0);
        cat.note_updates("r", 7);
        // Counter pinned at MAX, entry at MAX → still 0, never wrapped.
        assert_eq!(cat.staleness(&key).unwrap(), 0);
    }

    #[test]
    fn refresh_failures_recorded_and_cleared_by_store() {
        let cat = Catalog::new();
        let key = StatKey::new("r", &["a"]);
        assert!(cat.refresh_failure(&key).is_none());
        cat.note_refresh_failure(&key, "scan failed");
        cat.note_refresh_failure(&key, "build failed");
        let record = cat.refresh_failure(&key).unwrap();
        assert_eq!(record.count, 2);
        assert_eq!(record.last_error, "build failed");
        assert_eq!(cat.refresh_failures().len(), 1);
        // A successful store clears the streak.
        let hist = end_biased(&[1, 2], 1, 0).unwrap();
        cat.put(
            key.clone(),
            StoredHistogram::from_histogram(&[10, 20], &hist).unwrap(),
        );
        assert!(cat.refresh_failure(&key).is_none());
        assert!(cat.refresh_failures().is_empty());
    }

    #[test]
    fn analyze_end_biased_end_to_end() {
        let freqs = FrequencySet::new(vec![50, 3, 3, 3, 3, 3, 90]);
        let rel = relation_from_frequency_set("emp", "dept", &freqs, 77).unwrap();
        let cat = Catalog::new();
        let key = cat.analyze_end_biased(&rel, "dept", 3).unwrap();
        let stored = cat.get(&key).unwrap();
        assert_eq!(stored.num_buckets(), 3);
        // The two dominant values (0 → 50, 6 → 90) must be singled out.
        assert_eq!(stored.approx_frequency(0), 50);
        assert_eq!(stored.approx_frequency(6), 90);
        assert_eq!(stored.approx_frequency(1), 3);
    }

    #[test]
    fn analyze_matrix_end_biased_end_to_end() {
        use crate::generate::relation_from_matrix;
        use freqdist::FreqMatrix;
        let m = FreqMatrix::from_rows(2, 3, vec![90, 5, 6, 4, 5, 70]).unwrap();
        let rel =
            relation_from_matrix("emp", "dept", "year", &[10, 20], &[1, 2, 3], &m, 5).unwrap();
        let cat = Catalog::new();
        let key = cat
            .analyze_matrix_end_biased(&rel, "dept", "year", 3)
            .unwrap();
        assert_eq!(key.columns, vec!["dept".to_string(), "year".to_string()]);
        let stored = cat.get_matrix(&key).unwrap();
        // The two dominant pairs are singled out exactly.
        assert_eq!(stored.approx_frequency(10, 1), 90);
        assert_eq!(stored.approx_frequency(20, 3), 70);
        // Pooled pairs share the average (5+6+4+5)/4 = 5.
        assert_eq!(stored.approx_frequency(10, 2), 5);
        assert_eq!(cat.matrix_staleness(&key).unwrap(), 0);
        cat.note_updates("emp", 9);
        assert_eq!(cat.matrix_staleness(&key).unwrap(), 9);
        // 1-D and 2-D namespaces are distinct.
        assert!(cat.get(&key).is_err());
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cat = Arc::new(Catalog::new());
        let hist = end_biased(&[1, 2, 3], 1, 0).unwrap();
        let stored = StoredHistogram::from_histogram(&[1, 2, 3], &hist).unwrap();
        let mut handles = Vec::new();
        for t in 0..8 {
            let cat = Arc::clone(&cat);
            let stored = stored.clone();
            handles.push(std::thread::spawn(move || {
                let key = StatKey::new(format!("r{t}"), &["a"]);
                cat.put(key.clone(), stored);
                cat.note_updates(&format!("r{t}"), 1);
                cat.staleness(&key).unwrap()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 1);
        }
        assert_eq!(cat.keys().len(), 8);
    }

    #[test]
    fn epoch_bumps_once_per_mutation_and_snapshots_are_frozen() {
        let cat = Catalog::new();
        assert_eq!(cat.epoch(), 0);
        let before = cat.read_snapshot();

        let hist = end_biased(&[1, 2], 1, 0).unwrap();
        let stored = StoredHistogram::from_histogram(&[10, 20], &hist).unwrap();
        let key = StatKey::new("r", &["a"]);
        cat.put(key.clone(), stored.clone());
        assert_eq!(cat.epoch(), 1);
        cat.note_updates("r", 3);
        assert_eq!(cat.epoch(), 2);
        cat.note_refresh_failure(&key, "boom");
        assert_eq!(cat.epoch(), 3);

        // The pinned pre-mutation snapshot still shows the empty state.
        assert_eq!(before.epoch(), 0);
        assert!(before.get(&key).is_err());
        assert_eq!(before.version_of("r"), 0);

        // A fresh snapshot shows everything, at the current epoch.
        let now = cat.read_snapshot();
        assert_eq!(now.epoch(), 3);
        assert_eq!(now.get(&key).unwrap(), &stored);
        assert_eq!(now.staleness(&key).unwrap(), 3);
        assert_eq!(now.refresh_failure(&key).unwrap().count, 1);
    }

    #[test]
    fn put_all_is_one_epoch_and_atomic_for_readers() {
        let cat = Catalog::new();
        let hist = end_biased(&[1, 2], 1, 0).unwrap();
        let stored = StoredHistogram::from_histogram(&[10, 20], &hist).unwrap();
        let k1 = StatKey::new("t", &["a"]);
        let k2 = StatKey::new("t", &["b"]);
        cat.put_all_with_spec(vec![
            (k1.clone(), stored.clone(), None),
            (k2.clone(), stored, None),
        ]);
        // One mutation, one epoch: no snapshot can exist holding k1 but
        // not k2.
        assert_eq!(cat.epoch(), 1);
        let snap = cat.read_snapshot();
        assert!(snap.get(&k1).is_ok() && snap.get(&k2).is_ok());
        // An empty batch publishes nothing.
        cat.put_all_with_spec(Vec::new());
        assert_eq!(cat.epoch(), 1);
    }
}
