//! Columnar relational substrate for the histogram reproduction.
//!
//! The paper assumes a database system around its histograms: relations
//! to scan, a statistics collector (Algorithms *Matrix* and *JointMatrix*
//! of §3.3), joins to validate result sizes against, sampling to find
//! high frequencies cheaply (§4.2's DB2/MVS technique), and catalogs that
//! store histograms compactly (§4's storage discussion). This crate
//! builds all of that:
//!
//! * [`Relation`] — dictionary-encoded columnar storage with schemas.
//! * [`stats`] — Algorithm *Matrix*: single-scan frequency vectors and
//!   matrices via a hash table; [`joint`] — Algorithm *JointMatrix*.
//! * [`join`] — hash-join execution producing exact result cardinalities
//!   (the ground truth Theorem 2.1 is cross-checked against).
//! * [`sample`] — reservoir sampling and a Space-Saving sketch for
//!   identifying the β−1 highest frequencies without a full scan.
//! * [`catalog`] — a concurrent statistics catalog storing histograms in
//!   the paper's compact layout (values of the largest bucket are implied
//!   by absence), with staleness tracking and a self-contained binary
//!   codec.
//! * [`generate`] — materialisation of relations from frequency
//!   distributions, so every synthetic experiment runs against real
//!   tuples.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod catalog2d;
pub mod codec;
pub mod csv;
pub mod daemon;
pub mod error;
pub mod fxhash;
pub mod generate;
pub mod join;
pub mod joint;
pub mod maintenance;
pub mod par;
pub mod relation;
pub mod sample;
pub mod schema;
pub mod stats;
pub mod wal;

pub use catalog::{
    Catalog, CatalogSnapshot, RefreshFailure, RefreshStage, StoredHistogram, TuneReport,
};
pub use catalog2d::StoredMatrixHistogram;
pub use daemon::{
    BreakerState, Daemon, DaemonConfig, DaemonCore, DaemonEvent, DriftPrioritizer,
    RefreshPrioritizer,
};
pub use error::{Result, StoreError};
pub use par::par_map;
pub use relation::Relation;
pub use schema::{ColumnDef, Schema};
pub use wal::{DurableCatalog, IoFault, KillPoint};
