//! Algorithm *Matrix* (§3.3): single-scan frequency collection.
//!
//! "The frequencies of the domain values of attribute a₁ … can be
//! achieved in a single scan of each relation using a hash table to
//! access the frequency counter corresponding to each data value."
//!
//! One-column statistics produce a [`FrequencyTable`] (value → frequency);
//! two-column statistics produce a [`FrequencyMatrixTable`] whose dense
//! [`FreqMatrix`] is the paper's `T_j`, indexed by the sorted distinct
//! values of each attribute.

use crate::error::Result;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};
use crate::relation::Relation;
use freqdist::{FreqMatrix, FrequencySet};

/// Per-value frequencies of one attribute: the abstract "single-column
/// table" representation of a frequency set (§2.2), with the attachment
/// to domain values retained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyTable {
    /// Distinct domain values, sorted ascending.
    pub values: Vec<u64>,
    /// `freqs[i]` is the frequency of `values[i]`.
    pub freqs: Vec<u64>,
}

/// Per-column scalar statistics ANALYZE records alongside the
/// histogram: the value range, distinct-value count, and row count —
/// the inputs range estimation needs even before any bucketisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnSummary {
    /// Smallest value in the column.
    pub min: u64,
    /// Largest value in the column.
    pub max: u64,
    /// Distinct-value count `M`.
    pub distinct: u64,
    /// Total rows (Σ frequencies).
    pub rows: u64,
}

impl FrequencyTable {
    /// Number of distinct values `M`.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// The column's scalar summary (min/max/distinct/rows), or `None`
    /// for an empty column.
    pub fn summary(&self) -> Option<ColumnSummary> {
        Some(ColumnSummary {
            min: *self.values.first()?,
            max: *self.values.last()?,
            distinct: self.values.len() as u64,
            rows: self.freqs.iter().sum(),
        })
    }

    /// The frequency of a specific value (0 when absent).
    pub fn frequency_of(&self, value: u64) -> u64 {
        match self.values.binary_search(&value) {
            Ok(i) => self.freqs[i],
            Err(_) => 0,
        }
    }

    /// Forgets the value attachment, yielding the frequency set.
    pub fn frequency_set(&self) -> FrequencySet {
        FrequencySet::new(self.freqs.clone())
    }

    /// The frequencies as a horizontal `1 × M` vector (the shape of the
    /// first relation in a chain query).
    pub fn as_horizontal(&self) -> FreqMatrix {
        FreqMatrix::horizontal(self.freqs.clone())
    }

    /// The frequencies as a vertical `M × 1` vector (the shape of the
    /// last relation in a chain query).
    pub fn as_vertical(&self) -> FreqMatrix {
        FreqMatrix::vertical(self.freqs.clone())
    }
}

/// Pair frequencies of two attributes: the dense frequency matrix plus
/// the row/column value dictionaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequencyMatrixTable {
    /// Distinct values of the first attribute, sorted ascending (rows).
    pub row_values: Vec<u64>,
    /// Distinct values of the second attribute, sorted ascending (cols).
    pub col_values: Vec<u64>,
    /// `matrix[(k, l)]` = frequency of the pair
    /// `(row_values[k], col_values[l])`.
    pub matrix: FreqMatrix,
}

/// Algorithm *Matrix* for one attribute: a single scan with a hash-table
/// counter.
pub fn frequency_table(relation: &Relation, column: &str) -> Result<FrequencyTable> {
    let span = obs::span("frequency_table");
    let col = relation.column_by_name(column)?;
    obs::counter("relstore_scan_rows_total").add(col.len() as u64);
    span.record("rows", col.len());
    let mut counts: FxHashMap<u64, u64> = fx_map_with_capacity(col.len().min(1 << 16));
    for &v in col {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut pairs: Vec<(u64, u64)> = counts.into_iter().collect();
    pairs.sort_unstable_by_key(|&(v, _)| v);
    let (values, freqs) = pairs.into_iter().unzip();
    Ok(FrequencyTable { values, freqs })
}

/// Algorithm *Matrix* for an attribute pair: a single scan counting pair
/// occurrences, then densification into the paper's frequency matrix.
///
/// Pairs of distinct values that never co-occur get frequency 0, exactly
/// as in the dense matrix formulation of §2.2.
pub fn frequency_matrix_table(
    relation: &Relation,
    first: &str,
    second: &str,
) -> Result<FrequencyMatrixTable> {
    let span = obs::span("frequency_matrix_table");
    let a = relation.column_by_name(first)?;
    let b = relation.column_by_name(second)?;
    obs::counter("relstore_scan_rows_total").add(a.len() as u64);
    span.record("rows", a.len());
    let mut counts: FxHashMap<(u64, u64), u64> = fx_map_with_capacity(a.len().min(1 << 16));
    for (&x, &y) in a.iter().zip(b) {
        *counts.entry((x, y)).or_insert(0) += 1;
    }

    let mut row_values: Vec<u64> = counts.keys().map(|&(x, _)| x).collect();
    row_values.sort_unstable();
    row_values.dedup();
    let mut col_values: Vec<u64> = counts.keys().map(|&(_, y)| y).collect();
    col_values.sort_unstable();
    col_values.dedup();

    let row_index: FxHashMap<u64, usize> = row_values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let col_index: FxHashMap<u64, usize> = col_values
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();

    let mut matrix = FreqMatrix::zeros(row_values.len(), col_values.len());
    for ((x, y), c) in counts {
        *matrix.get_mut(row_index[&x], col_index[&y]) = c;
    }
    Ok(FrequencyMatrixTable {
        row_values,
        col_values,
        matrix,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample_relation() -> Relation {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut r = Relation::empty("r", schema);
        for row in [[1u64, 7], [1, 7], [1, 8], [2, 7], [3, 9], [3, 9], [3, 9]] {
            r.push_row(&row).unwrap();
        }
        r
    }

    #[test]
    fn frequency_table_counts_and_sorts() {
        let t = frequency_table(&sample_relation(), "a").unwrap();
        assert_eq!(t.values, vec![1, 2, 3]);
        assert_eq!(t.freqs, vec![3, 1, 3]);
        assert_eq!(t.frequency_of(2), 1);
        assert_eq!(t.frequency_of(42), 0);
        assert_eq!(t.frequency_set().total(), 7);
    }

    #[test]
    fn summary_reports_range_and_counts() {
        let t = frequency_table(&sample_relation(), "a").unwrap();
        assert_eq!(
            t.summary(),
            Some(ColumnSummary {
                min: 1,
                max: 3,
                distinct: 3,
                rows: 7
            })
        );
        let empty = FrequencyTable {
            values: vec![],
            freqs: vec![],
        };
        assert_eq!(empty.summary(), None);
    }

    #[test]
    fn frequency_table_vectors() {
        let t = frequency_table(&sample_relation(), "a").unwrap();
        assert_eq!(t.as_horizontal().rows(), 1);
        assert_eq!(t.as_vertical().cols(), 1);
        assert_eq!(t.as_horizontal().cells(), t.as_vertical().cells());
    }

    #[test]
    fn matrix_table_densifies_pairs() {
        let t = frequency_matrix_table(&sample_relation(), "a", "b").unwrap();
        assert_eq!(t.row_values, vec![1, 2, 3]);
        assert_eq!(t.col_values, vec![7, 8, 9]);
        // (1,7)=2 (1,8)=1 (2,7)=1 (3,9)=3, rest 0.
        assert_eq!(t.matrix.get(0, 0), 2);
        assert_eq!(t.matrix.get(0, 1), 1);
        assert_eq!(t.matrix.get(1, 0), 1);
        assert_eq!(t.matrix.get(2, 2), 3);
        assert_eq!(t.matrix.get(0, 2), 0);
        assert_eq!(t.matrix.total(), 7);
    }

    #[test]
    fn matrix_row_sums_match_single_column_frequencies() {
        let r = sample_relation();
        let t1 = frequency_table(&r, "a").unwrap();
        let t2 = frequency_matrix_table(&r, "a", "b").unwrap();
        for (k, &v) in t2.row_values.iter().enumerate() {
            let row_sum: u64 = t2.matrix.row(k).iter().sum();
            assert_eq!(row_sum, t1.frequency_of(v));
        }
    }

    #[test]
    fn unknown_column_errors() {
        let r = sample_relation();
        assert!(frequency_table(&r, "nope").is_err());
        assert!(frequency_matrix_table(&r, "a", "nope").is_err());
    }

    #[test]
    fn empty_relation_gives_empty_tables() {
        let r = Relation::empty("e", Schema::new(["x"]).unwrap());
        let t = frequency_table(&r, "x").unwrap();
        assert_eq!(t.num_values(), 0);
        assert!(t.frequency_set().is_empty());
    }
}
