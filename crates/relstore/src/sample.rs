//! Sampling-based detection of high frequencies (§4.2).
//!
//! "Sampling can be used to identify the β−1 highest frequencies, which
//! is an extremely fast operation, requiring constant amount of very
//! small space. Something similar is done in DB2/MVS in order to identify
//! the 10 highest frequencies in each attribute."
//!
//! Two implementations are provided:
//!
//! * [`reservoir_sample`] + [`top_k_from_sample`] — the classic
//!   fixed-space random sample with frequency scaling.
//! * [`SpaceSaving`] — a deterministic heavy-hitter sketch (Metwally et
//!   al.) offered as a streaming alternative; its guaranteed over-count
//!   bound suits the same "find the univalued-bucket candidates" role.
//!
//! The paper also notes the technique fails for distributions with many
//! high and few *low* frequencies (reverse-Zipf): there is no cheap way
//! to find the lowest frequencies by sampling. The `ablations` experiment
//! measures exactly that failure mode.

use crate::error::{Result, StoreError};
use crate::fxhash::{fx_map_with_capacity, FxHashMap};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Draws a uniform reservoir sample of `k` items from `data` (Vitter's
/// Algorithm R), seeded for reproducibility. Returns all of `data` when
/// `k >= data.len()`.
pub fn reservoir_sample(data: &[u64], k: usize, seed: u64) -> Vec<u64> {
    if k == 0 {
        return Vec::new();
    }
    if k >= data.len() {
        return data.to_vec();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir: Vec<u64> = data[..k].to_vec();
    for (i, &v) in data.iter().enumerate().skip(k) {
        let j = rng.random_range(0..=i);
        if j < k {
            reservoir[j] = v;
        }
    }
    reservoir
}

/// An estimated high-frequency value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatedFrequency {
    /// The attribute value.
    pub value: u64,
    /// Its estimated frequency in the full column (sample count scaled by
    /// the sampling fraction).
    pub estimated_freq: u64,
}

/// Estimates the `k` highest-frequency values from a sample of a column
/// of `population` total rows.
///
/// Values are ranked by sample count; counts are scaled back to the
/// population. Ties are broken by value for determinism.
pub fn top_k_from_sample(
    sample: &[u64],
    population: usize,
    k: usize,
) -> Result<Vec<EstimatedFrequency>> {
    if sample.is_empty() {
        return Err(StoreError::InvalidParameter(
            "cannot estimate frequencies from an empty sample".into(),
        ));
    }
    let mut counts: FxHashMap<u64, u64> = fx_map_with_capacity(sample.len().min(1 << 12));
    for &v in sample {
        *counts.entry(v).or_insert(0) += 1;
    }
    let mut ranked: Vec<(u64, u64)> = counts.into_iter().collect();
    // Descending count, ascending value.
    ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let scale = population as f64 / sample.len() as f64;
    Ok(ranked
        .into_iter()
        .take(k)
        .map(|(value, c)| EstimatedFrequency {
            value,
            estimated_freq: (c as f64 * scale).round() as u64,
        })
        .collect())
}

/// The Space-Saving heavy-hitter sketch: tracks at most `capacity`
/// counters; any value with true frequency above `N / capacity` is
/// guaranteed to be present after a full pass.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    /// value → (count, overestimation when it took over a counter)
    counters: FxHashMap<u64, (u64, u64)>,
    processed: u64,
}

impl SpaceSaving {
    /// Creates a sketch with `capacity` counters (must be positive).
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(StoreError::InvalidParameter(
                "SpaceSaving needs at least one counter".into(),
            ));
        }
        Ok(Self {
            capacity,
            counters: fx_map_with_capacity(capacity),
            processed: 0,
        })
    }

    /// Observes one value.
    pub fn observe(&mut self, value: u64) {
        self.processed += 1;
        if let Some(entry) = self.counters.get_mut(&value) {
            entry.0 += 1;
            return;
        }
        if self.counters.len() < self.capacity {
            self.counters.insert(value, (1, 0));
            return;
        }
        // Evict the minimum counter; the newcomer inherits its count as
        // the guaranteed over-estimation bound.
        let (&min_value, &(min_count, _)) = self
            .counters
            .iter()
            .min_by_key(|&(v, &(c, _))| (c, *v))
            .expect("capacity > 0 so counters is non-empty");
        self.counters.remove(&min_value);
        self.counters.insert(value, (min_count + 1, min_count));
    }

    /// Observes a whole column.
    pub fn observe_all(&mut self, data: &[u64]) {
        for &v in data {
            self.observe(v);
        }
    }

    /// Total values observed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The current top-`k` candidates: `(value, count upper bound,
    /// guaranteed lower bound)`, sorted by count descending.
    pub fn top_k(&self, k: usize) -> Vec<(u64, u64, u64)> {
        let mut all: Vec<(u64, u64, u64)> = self
            .counters
            .iter()
            .map(|(&v, &(c, over))| (v, c, c - over))
            .collect();
        all.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_column() -> Vec<u64> {
        // Value 1: 500×, value 2: 300×, value 3: 100×, values 10..110: 1×.
        let mut col = Vec::new();
        col.extend(std::iter::repeat_n(1u64, 500));
        col.extend(std::iter::repeat_n(2u64, 300));
        col.extend(std::iter::repeat_n(3u64, 100));
        col.extend(10..110u64);
        col
    }

    #[test]
    fn reservoir_is_right_size_and_reproducible() {
        let col = skewed_column();
        let s1 = reservoir_sample(&col, 100, 9);
        let s2 = reservoir_sample(&col, 100, 9);
        assert_eq!(s1.len(), 100);
        assert_eq!(s1, s2);
        assert_ne!(s1, reservoir_sample(&col, 100, 10));
    }

    #[test]
    fn reservoir_small_population_returns_all() {
        assert_eq!(reservoir_sample(&[1, 2, 3], 10, 0), vec![1, 2, 3]);
        assert!(reservoir_sample(&[1, 2, 3], 0, 0).is_empty());
    }

    #[test]
    fn sample_top_k_finds_heavy_values() {
        let col = skewed_column();
        let sample = reservoir_sample(&col, 200, 42);
        let top = top_k_from_sample(&sample, col.len(), 2).unwrap();
        let values: Vec<u64> = top.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![1, 2]);
        // Scaled estimate of the top value within 40% of truth.
        let est = top[0].estimated_freq as f64;
        assert!(
            (est - 500.0).abs() < 200.0,
            "estimate {est} too far from 500"
        );
    }

    #[test]
    fn empty_sample_rejected() {
        assert!(top_k_from_sample(&[], 10, 1).is_err());
    }

    #[test]
    fn space_saving_guarantees_heavy_hitters() {
        let col = skewed_column();
        let mut ss = SpaceSaving::new(10).unwrap();
        ss.observe_all(&col);
        assert_eq!(ss.processed(), col.len() as u64);
        let top: Vec<u64> = ss.top_k(3).iter().map(|&(v, _, _)| v).collect();
        // 1, 2, 3 all exceed N/capacity = 100 and must be present.
        assert!(top.contains(&1));
        assert!(top.contains(&2));
        assert!(top.contains(&3));
        // Counts are upper bounds.
        for &(v, upper, lower) in &ss.top_k(3) {
            let truth = col.iter().filter(|&&x| x == v).count() as u64;
            assert!(upper >= truth, "upper bound violated for {v}");
            assert!(lower <= truth, "lower bound violated for {v}");
        }
    }

    #[test]
    fn space_saving_exact_when_under_capacity() {
        let mut ss = SpaceSaving::new(100).unwrap();
        ss.observe_all(&[5, 5, 6]);
        let top = ss.top_k(2);
        assert_eq!(top[0], (5, 2, 2));
        assert_eq!(top[1], (6, 1, 1));
    }

    #[test]
    fn space_saving_zero_capacity_rejected() {
        assert!(SpaceSaving::new(0).is_err());
    }
}
