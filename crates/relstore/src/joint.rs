//! Algorithm *JointMatrix* (§3.3): building the joint-frequency table of
//! two join relations.
//!
//! "First, the frequencies of the domain values of attribute a₁ in R₀ and
//! R₁ are computed. … Next, these two lists of ⟨attribute, frequency⟩
//! pairs are joined on the attribute value to give the joint-frequency
//! matrix." The join step is what makes collecting joint information
//! "quite expensive" compared to per-relation frequency sets — the cost
//! asymmetry that motivates Theorem 3.3.

use crate::error::Result;
use crate::relation::Relation;
use crate::stats::{frequency_table, FrequencyTable};

/// One row of a joint-frequency table: a join value and its frequency in
/// each relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JointRow {
    /// The join attribute value.
    pub value: u64,
    /// Its frequency in the left relation.
    pub left_freq: u64,
    /// Its frequency in the right relation.
    pub right_freq: u64,
}

/// The joint-frequency table of a 2-way join (§2.2's "(2N+1)-column
/// table" specialised to N = 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JointFrequencyTable {
    /// Rows for every value present in *both* relations (values missing
    /// from either side contribute no join tuples and are dropped by the
    /// inner join of the frequency lists).
    pub rows: Vec<JointRow>,
}

impl JointFrequencyTable {
    /// The exact 2-way join result size: `Σ_v f₀(v)·f₁(v)`.
    pub fn join_size(&self) -> u128 {
        self.rows
            .iter()
            .map(|r| (r.left_freq as u128) * (r.right_freq as u128))
            .sum()
    }
}

/// Joins two frequency tables on the attribute value (merge join over the
/// sorted value lists).
pub fn join_frequency_tables(left: &FrequencyTable, right: &FrequencyTable) -> JointFrequencyTable {
    let mut rows = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.values.len() && j < right.values.len() {
        match left.values[i].cmp(&right.values[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                rows.push(JointRow {
                    value: left.values[i],
                    left_freq: left.freqs[i],
                    right_freq: right.freqs[j],
                });
                i += 1;
                j += 1;
            }
        }
    }
    JointFrequencyTable { rows }
}

/// Algorithm *JointMatrix* end to end: scan both relations (Algorithm
/// *Matrix*), then join the frequency lists.
pub fn joint_frequency_table(
    left: &Relation,
    left_col: &str,
    right: &Relation,
    right_col: &str,
) -> Result<JointFrequencyTable> {
    let lt = frequency_table(left, left_col)?;
    let rt = frequency_table(right, right_col)?;
    Ok(join_frequency_tables(&lt, &rt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn relation_with(col: &str, values: &[u64]) -> Relation {
        let schema = Schema::new([col]).unwrap();
        let mut r = Relation::empty("r", schema);
        for &v in values {
            r.push_row(&[v]).unwrap();
        }
        r
    }

    #[test]
    fn joins_on_common_values_only() {
        let l = relation_with("a", &[1, 1, 2, 5]);
        let r = relation_with("a", &[1, 2, 2, 3]);
        let joint = joint_frequency_table(&l, "a", &r, "a").unwrap();
        assert_eq!(
            joint.rows,
            vec![
                JointRow {
                    value: 1,
                    left_freq: 2,
                    right_freq: 1
                },
                JointRow {
                    value: 2,
                    left_freq: 1,
                    right_freq: 2
                },
            ]
        );
        assert_eq!(joint.join_size(), 2 + 2);
    }

    #[test]
    fn disjoint_relations_have_empty_joint_table() {
        let l = relation_with("a", &[1, 2]);
        let r = relation_with("a", &[3, 4]);
        let joint = joint_frequency_table(&l, "a", &r, "a").unwrap();
        assert!(joint.rows.is_empty());
        assert_eq!(joint.join_size(), 0);
    }

    #[test]
    fn self_join_gives_squared_frequencies() {
        let rel = relation_with("a", &[7, 7, 7, 9]);
        let joint = joint_frequency_table(&rel, "a", &rel, "a").unwrap();
        assert_eq!(joint.join_size(), 9 + 1);
    }

    #[test]
    fn paper_example_2_2_first_join() {
        // R0 over {v1=1, v2=2}: 20 and 15 tuples; R1.a1 frequencies are
        // its matrix row sums 25+10+12=47 and 4+12+3=19.
        let mut r0_vals = vec![1u64; 20];
        r0_vals.extend(vec![2u64; 15]);
        let r0 = relation_with("a1", &r0_vals);
        let mut r1_vals = vec![1u64; 47];
        r1_vals.extend(vec![2u64; 19]);
        let r1 = relation_with("a1", &r1_vals);
        let joint = joint_frequency_table(&r0, "a1", &r1, "a1").unwrap();
        assert_eq!(joint.join_size(), 20 * 47 + 15 * 19);
    }
}
