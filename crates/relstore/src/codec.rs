//! Self-contained binary persistence for catalog histograms.
//!
//! The sanctioned dependency set includes `serde` but no serialisation
//! *format* crate, so the catalog ships its own little-endian,
//! length-prefixed codec built on [`bytes`]. The format is versioned by a
//! magic header and deliberately simple: it encodes exactly the compact
//! §4 layout of [`StoredHistogram`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      : b"VOH3"
//! n_buckets  : u32
//! avgs       : n_buckets × u64
//! default    : u32
//! n_except   : u64
//! exceptions : n_except × (u64 value, u32 bucket)
//! bounds     : n_buckets × (u64 lo, u64 hi, u64 distinct)
//! ```
//!
//! `VOH3` supersedes the bounds-less `VOH1`: every bucket now persists
//! its value span `[lo, hi)` and distinct-count so range and band-join
//! interpolation survive a snapshot round-trip. Old `VOH1` blobs are
//! rejected with the typed [`StoreError::UnsupportedSnapshot`] — they
//! decode to histograms that cannot answer range predicates, so forcing
//! a re-ANALYZE is strictly safer than guessing spans.

use crate::catalog::StoredHistogram;
use crate::catalog2d::StoredMatrixHistogram;
use crate::error::{Result, StoreError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use vopt_hist::{BuilderSpec, ValueBounds};

const MAGIC: &[u8; 4] = b"VOH3";
const MAGIC_2D: &[u8; 4] = b"VOH2";
/// 1-D magics this build recognises but no longer reads.
const RETIRED_1D: [&[u8; 4]; 1] = [b"VOH1"];
/// Catalog magics this build recognises but no longer reads (`VOHF`
/// was never shipped; it is listed so a blob stamped with it still
/// gets the "re-run ANALYZE" error instead of "corrupted").
const RETIRED_CATALOG: [&[u8; 4]; 4] = [b"VOHC", b"VOHD", b"VOHE", b"VOHF"];

/// Encodes a stored histogram into its binary catalog representation.
pub fn encode_histogram(hist: &StoredHistogram) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        4 + 4
            + hist.bucket_avgs().len() * 8
            + 4
            + 8
            + hist.exceptions().len() * 12
            + hist.bounds().len() * 24,
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(hist.bucket_avgs().len() as u32);
    for &avg in hist.bucket_avgs() {
        buf.put_u64_le(avg);
    }
    buf.put_u32_le(hist.default_bucket());
    buf.put_u64_le(hist.exceptions().len() as u64);
    for &(value, bucket) in hist.exceptions() {
        buf.put_u64_le(value);
        buf.put_u32_le(bucket);
    }
    for b in hist.bounds() {
        buf.put_u64_le(b.lo);
        buf.put_u64_le(b.hi);
        buf.put_u64_le(b.distinct);
    }
    buf.freeze()
}

/// Guard used by every decoder in this module (and by the wire-protocol
/// codec in `netserve`, which reuses these primitives): a typed
/// "truncated input" error instead of a panic when `buf` runs short.
pub fn need(buf: &impl Buf, bytes: usize, what: &str) -> Result<()> {
    if buf.remaining() < bytes {
        return Err(StoreError::Codec(format!(
            "truncated input: need {bytes} byte(s) for {what}, have {}",
            buf.remaining()
        )));
    }
    Ok(())
}

/// Decodes a histogram previously produced by [`encode_histogram`].
pub fn decode_histogram(mut data: Bytes) -> Result<StoredHistogram> {
    need(&data, 4, "magic")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if RETIRED_1D.contains(&&magic) {
        return Err(StoreError::UnsupportedSnapshot {
            found: String::from_utf8_lossy(&magic).into_owned(),
            supported: String::from_utf8_lossy(MAGIC).into_owned(),
        });
    }
    if &magic != MAGIC {
        return Err(StoreError::Codec(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    need(&data, 4, "bucket count")?;
    let n_buckets = data.get_u32_le() as usize;
    need(&data, n_buckets * 8, "bucket averages")?;
    let mut avgs = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        avgs.push(data.get_u64_le());
    }
    need(&data, 4, "default bucket")?;
    let default = data.get_u32_le();
    if (default as usize) >= n_buckets {
        return Err(StoreError::Codec(format!(
            "default bucket {default} out of range 0..{n_buckets}"
        )));
    }
    need(&data, 8, "exception count")?;
    let n_except = data.get_u64_le() as usize;
    need(&data, n_except * 12, "exceptions")?;
    let mut exceptions = Vec::with_capacity(n_except);
    let mut prev: Option<u64> = None;
    for _ in 0..n_except {
        let value = data.get_u64_le();
        let bucket = data.get_u32_le();
        if (bucket as usize) >= n_buckets {
            return Err(StoreError::Codec(format!(
                "exception bucket {bucket} out of range 0..{n_buckets}"
            )));
        }
        if prev.is_some_and(|p| p >= value) {
            return Err(StoreError::Codec(
                "exception values must be strictly increasing".into(),
            ));
        }
        prev = Some(value);
        exceptions.push((value, bucket));
    }
    need(&data, n_buckets * 24, "bucket value spans")?;
    let mut bounds = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        let lo = data.get_u64_le();
        let hi = data.get_u64_le();
        let distinct = data.get_u64_le();
        bounds.push(ValueBounds { lo, hi, distinct });
    }
    if data.has_remaining() {
        return Err(StoreError::Codec(format!(
            "{} trailing byte(s) after histogram",
            data.remaining()
        )));
    }
    StoredHistogram::from_parts(avgs, default, exceptions, bounds)
}

/// Encodes a 2-D stored histogram. Same layout as the 1-D format except
/// the magic is `VOH2` and each exception carries two values.
pub fn encode_matrix_histogram(hist: &StoredMatrixHistogram) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        4 + 4 + hist.bucket_avgs().len() * 8 + 4 + 8 + hist.exceptions().len() * 20,
    );
    buf.put_slice(MAGIC_2D);
    buf.put_u32_le(hist.bucket_avgs().len() as u32);
    for &avg in hist.bucket_avgs() {
        buf.put_u64_le(avg);
    }
    buf.put_u32_le(hist.default_bucket());
    buf.put_u64_le(hist.exceptions().len() as u64);
    for &(a, b, bucket) in hist.exceptions() {
        buf.put_u64_le(a);
        buf.put_u64_le(b);
        buf.put_u32_le(bucket);
    }
    buf.freeze()
}

/// Decodes a 2-D histogram produced by [`encode_matrix_histogram`].
pub fn decode_matrix_histogram(mut data: Bytes) -> Result<StoredMatrixHistogram> {
    need(&data, 4, "magic")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC_2D {
        return Err(StoreError::Codec(format!(
            "bad magic {magic:?}, expected {MAGIC_2D:?}"
        )));
    }
    need(&data, 4, "bucket count")?;
    let n_buckets = data.get_u32_le() as usize;
    need(&data, n_buckets * 8, "bucket averages")?;
    let mut avgs = Vec::with_capacity(n_buckets);
    for _ in 0..n_buckets {
        avgs.push(data.get_u64_le());
    }
    need(&data, 4, "default bucket")?;
    let default = data.get_u32_le();
    need(&data, 8, "exception count")?;
    let n_except = data.get_u64_le() as usize;
    need(&data, n_except * 20, "exceptions")?;
    let mut exceptions = Vec::with_capacity(n_except);
    for _ in 0..n_except {
        let a = data.get_u64_le();
        let b = data.get_u64_le();
        let bucket = data.get_u32_le();
        exceptions.push((a, b, bucket));
    }
    if data.has_remaining() {
        return Err(StoreError::Codec(format!(
            "{} trailing byte(s) after histogram",
            data.remaining()
        )));
    }
    StoredMatrixHistogram::from_parts(avgs, default, exceptions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vopt_hist::construct::end_biased;

    fn sample() -> StoredHistogram {
        let freqs = [90u64, 10, 9, 8, 2, 7];
        let hist = end_biased(&freqs, 2, 1).unwrap();
        let values: Vec<u64> = (0..6).map(|i| i * 100).collect();
        StoredHistogram::from_histogram(&values, &hist).unwrap()
    }

    #[test]
    fn round_trip() {
        let h = sample();
        let encoded = encode_histogram(&h);
        let decoded = decode_histogram(encoded).unwrap();
        assert_eq!(h, decoded);
    }

    #[test]
    fn round_trip_preserves_estimates() {
        let h = sample();
        let decoded = decode_histogram(encode_histogram(&h)).unwrap();
        for v in [0u64, 100, 200, 300, 400, 500, 12345] {
            assert_eq!(h.approx_frequency(v), decoded.approx_frequency(v));
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_histogram(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            decode_histogram(Bytes::from(bytes)),
            Err(StoreError::Codec(_))
        ));
    }

    #[test]
    fn truncation_rejected_at_every_boundary() {
        let bytes = encode_histogram(&sample()).to_vec();
        for cut in 0..bytes.len() {
            let truncated = Bytes::copy_from_slice(&bytes[..cut]);
            assert!(
                decode_histogram(truncated).is_err(),
                "cut at {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_histogram(&sample()).to_vec();
        bytes.push(0);
        assert!(decode_histogram(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn out_of_range_default_bucket_rejected() {
        // Hand-craft: 1 bucket, default id 7.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(1);
        buf.put_u64_le(42);
        buf.put_u32_le(7);
        buf.put_u64_le(0);
        assert!(decode_histogram(buf.freeze()).is_err());
    }

    #[test]
    fn round_trip_preserves_bounds() {
        let h = sample();
        assert_eq!(h.bounds().len(), h.num_buckets());
        let decoded = decode_histogram(encode_histogram(&h)).unwrap();
        assert_eq!(h.bounds(), decoded.bounds());
    }

    #[test]
    fn retired_voh1_magic_gets_typed_rejection() {
        let mut bytes = encode_histogram(&sample()).to_vec();
        bytes[3] = b'1';
        match decode_histogram(Bytes::from(bytes)) {
            Err(StoreError::UnsupportedSnapshot { found, supported }) => {
                assert_eq!(found, "VOH1");
                assert_eq!(supported, "VOH3");
            }
            other => panic!("expected UnsupportedSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn malformed_bounds_rejected() {
        // Corrupt a span so lo >= hi: flip the hi of the last bucket to 0.
        let h = sample();
        let mut bytes = encode_histogram(&h).to_vec();
        let tail = h.num_buckets() * 24;
        let hi_off = bytes.len() - tail + 8; // first bucket's hi
        bytes[hi_off..hi_off + 8].fill(0);
        assert!(matches!(
            decode_histogram(Bytes::from(bytes)),
            Err(StoreError::InvalidParameter(_))
        ));
    }

    fn sample_2d() -> StoredMatrixHistogram {
        use freqdist::FreqMatrix;
        use vopt_hist::construct::v_opt_end_biased;
        use vopt_hist::MatrixHistogram;
        let m = FreqMatrix::from_rows(2, 3, vec![90, 5, 6, 4, 5, 70]).unwrap();
        let mh = MatrixHistogram::build(&m, |c| Ok(v_opt_end_biased(c, 3)?.histogram)).unwrap();
        StoredMatrixHistogram::from_matrix_histogram(&[10, 20], &[1, 2, 3], &mh).unwrap()
    }

    #[test]
    fn matrix_round_trip() {
        let h = sample_2d();
        let decoded = decode_matrix_histogram(encode_matrix_histogram(&h)).unwrap();
        assert_eq!(h, decoded);
        for (a, b) in [(10u64, 1u64), (10, 2), (20, 3), (7, 7)] {
            assert_eq!(h.approx_frequency(a, b), decoded.approx_frequency(a, b));
        }
    }

    #[test]
    fn matrix_magic_is_distinct_from_1d() {
        let h1 = sample();
        let h2 = sample_2d();
        assert!(decode_matrix_histogram(encode_histogram(&h1)).is_err());
        assert!(decode_histogram(encode_matrix_histogram(&h2)).is_err());
    }

    #[test]
    fn matrix_truncation_rejected() {
        let bytes = encode_matrix_histogram(&sample_2d()).to_vec();
        for cut in [0usize, 3, 7, bytes.len() - 1] {
            assert!(decode_matrix_histogram(Bytes::copy_from_slice(&bytes[..cut])).is_err());
        }
    }

    #[test]
    fn retired_catalog_magic_gets_typed_rejection() {
        let catalog = crate::catalog::Catalog::new();
        catalog.put(crate::catalog::StatKey::new("r", &["a"]), sample());
        for retired in ["VOHC", "VOHD", "VOHE", "VOHF"] {
            // Re-stamp the magic and recompute the checksum so the blob
            // is exactly what an authentic old writer would produce.
            let mut bytes = encode_catalog(&catalog).to_vec();
            bytes[..4].copy_from_slice(retired.as_bytes());
            let body_len = bytes.len() - 8;
            let checksum = catalog_checksum(&bytes[..body_len]);
            bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
            match decode_catalog(Bytes::from(bytes)) {
                Err(StoreError::UnsupportedSnapshot { found, supported }) => {
                    assert_eq!(found, retired);
                    assert_eq!(supported, "VOHG");
                }
                other => panic!("{retired}: expected UnsupportedSnapshot, got {other:?}"),
            }
        }
    }

    #[test]
    fn unsorted_exceptions_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(2);
        buf.put_u64_le(1);
        buf.put_u64_le(2);
        buf.put_u32_le(0);
        buf.put_u64_le(2);
        buf.put_u64_le(10);
        buf.put_u32_le(1);
        buf.put_u64_le(5); // decreasing
        buf.put_u32_le(1);
        assert!(decode_histogram(buf.freeze()).is_err());
    }
}

/// Encodes a builder spec as a one-byte tag plus parameters. Tag 0 is
/// "unrecorded" (raw `put`s); every other tag mirrors a
/// [`BuilderSpec`] variant.
pub(crate) fn put_spec(buf: &mut BytesMut, spec: Option<BuilderSpec>) {
    match spec {
        None => buf.put_u8(0),
        Some(BuilderSpec::Trivial) => buf.put_u8(1),
        Some(BuilderSpec::EquiWidth(b)) => {
            buf.put_u8(2);
            buf.put_u64_le(b as u64);
        }
        Some(BuilderSpec::EquiDepth(b)) => {
            buf.put_u8(3);
            buf.put_u64_le(b as u64);
        }
        Some(BuilderSpec::VOptSerial(b)) => {
            buf.put_u8(4);
            buf.put_u64_le(b as u64);
        }
        Some(BuilderSpec::VOptSerialExhaustive(b)) => {
            buf.put_u8(5);
            buf.put_u64_le(b as u64);
        }
        Some(BuilderSpec::VOptEndBiased(b)) => {
            buf.put_u8(6);
            buf.put_u64_le(b as u64);
        }
        Some(BuilderSpec::EndBiased { high, low }) => {
            buf.put_u8(7);
            buf.put_u64_le(high as u64);
            buf.put_u64_le(low as u64);
        }
        Some(BuilderSpec::MaxDiff(b)) => {
            buf.put_u8(8);
            buf.put_u64_le(b as u64);
        }
    }
}

pub(crate) fn get_spec(data: &mut Bytes) -> Result<Option<BuilderSpec>> {
    need(data, 1, "builder spec tag")?;
    let tag = data.get_u8();
    let buckets = |data: &mut Bytes| -> Result<usize> {
        need(data, 8, "builder spec buckets")?;
        Ok(data.get_u64_le() as usize)
    };
    Ok(match tag {
        0 => None,
        1 => Some(BuilderSpec::Trivial),
        2 => Some(BuilderSpec::EquiWidth(buckets(data)?)),
        3 => Some(BuilderSpec::EquiDepth(buckets(data)?)),
        4 => Some(BuilderSpec::VOptSerial(buckets(data)?)),
        5 => Some(BuilderSpec::VOptSerialExhaustive(buckets(data)?)),
        6 => Some(BuilderSpec::VOptEndBiased(buckets(data)?)),
        7 => {
            let high = buckets(data)?;
            let low = buckets(data)?;
            Some(BuilderSpec::EndBiased { high, low })
        }
        8 => Some(BuilderSpec::MaxDiff(buckets(data)?)),
        other => {
            return Err(StoreError::Codec(format!(
                "unknown builder spec tag {other}"
            )))
        }
    })
}

/// FxHash-64 of a snapshot's payload bytes: the integrity checksum the
/// `VOHG` format appends so that *any* byte corruption — including one
/// that would still parse into structurally valid entries (e.g. a
/// flipped bit inside a bucket average) — is detected at load time as a
/// typed [`StoreError::Codec`] instead of silently producing wrong
/// estimates.
pub fn catalog_checksum(payload: &[u8]) -> u64 {
    use std::hash::Hasher as _;
    let mut h = crate::fxhash::FxHasher::default();
    h.write(payload);
    h.finish()
}

/// Length-prefixed (u32 le) string, the workspace-wide wire idiom.
pub fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

pub(crate) fn put_key(buf: &mut BytesMut, key: &crate::catalog::StatKey) {
    put_str(buf, &key.relation);
    buf.put_u16_le(key.columns.len() as u16);
    for c in &key.columns {
        put_str(buf, c);
    }
}

/// Reads a [`put_str`]-encoded string, validating UTF-8.
pub fn get_str(data: &mut Bytes) -> Result<String> {
    need(data, 4, "string length")?;
    let len = data.get_u32_le() as usize;
    need(data, len, "string bytes")?;
    let bytes = data.split_to(len);
    String::from_utf8(bytes.to_vec()).map_err(|e| StoreError::Codec(format!("bad utf8: {e}")))
}

pub(crate) fn get_key(data: &mut Bytes) -> Result<crate::catalog::StatKey> {
    let relation = get_str(data)?;
    need(data, 2, "column count")?;
    let n = data.get_u16_le() as usize;
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        columns.push(get_str(data)?);
    }
    Ok(crate::catalog::StatKey { relation, columns })
}

pub(crate) fn get_blob(data: &mut Bytes) -> Result<Bytes> {
    need(data, 4, "blob length")?;
    let len = data.get_u32_le() as usize;
    need(data, len, "blob bytes")?;
    Ok(data.split_to(len))
}

/// Encodes an entire catalog snapshot (all 1-D and 2-D histograms with
/// their keys and construction specs) as one binary blob. Staleness
/// counters are deliberately not persisted: reloaded statistics start
/// fresh, exactly as after an ANALYZE.
///
/// Layout: magic `VOHG`, `u32` 1-D entry count, entries, `u32` 2-D
/// entry count, entries, then a trailing `u64` FxHash-64 checksum of
/// every preceding byte. Each entry is `key` (relation + column list as
/// length-prefixed UTF-8), a builder-spec tag (how the histogram was
/// built — see [`BuilderSpec`]), and a length-prefixed histogram blob
/// in the `VOH3`/`VOH2` format.
///
/// Format lineage: `VOHC` (spec-less) → `VOHD` (specs) → `VOHE`
/// (checksum) → `VOHG` (per-bucket value bounds inside the `VOH3`
/// blobs; `VOHF` was reserved and never shipped). Retired magics decode
/// to the typed [`StoreError::UnsupportedSnapshot`] — "re-run ANALYZE"
/// — never to a catalog that silently lacks range statistics.
pub fn encode_catalog(catalog: &crate::catalog::Catalog) -> Bytes {
    let ones = catalog.snapshot_1d();
    let twos = catalog.snapshot_2d();
    let mut buf = BytesMut::new();
    buf.put_slice(b"VOHG");
    buf.put_u32_le(ones.len() as u32);
    for (key, hist, spec) in &ones {
        put_key(&mut buf, key);
        put_spec(&mut buf, *spec);
        let blob = encode_histogram(hist);
        buf.put_u32_le(blob.len() as u32);
        buf.put_slice(&blob);
    }
    buf.put_u32_le(twos.len() as u32);
    for (key, hist, spec) in &twos {
        put_key(&mut buf, key);
        put_spec(&mut buf, *spec);
        let blob = encode_matrix_histogram(hist);
        buf.put_u32_le(blob.len() as u32);
        buf.put_slice(&blob);
    }
    let checksum = catalog_checksum(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Decodes a catalog snapshot produced by [`encode_catalog`] into a
/// fresh catalog (all statistics start unstale).
///
/// The trailing checksum is verified before any entry is parsed, so a
/// corrupted snapshot always surfaces as [`StoreError::Codec`] — never
/// as a catalog that loads but estimates wrongly.
pub fn decode_catalog(mut data: Bytes) -> Result<crate::catalog::Catalog> {
    need(&data, 4 + 8, "catalog checksum")?;
    // Checksum before magic classification: a bit flip that lands the
    // magic on a retired format string must still read as corruption,
    // not as "old snapshot, re-run ANALYZE". Authentic retired
    // snapshots (`VOHE` onward) carry the same trailing checksum and
    // pass this gate, then get the typed rejection below.
    let body = data.split_to(data.len() - 8);
    let expected = catalog_checksum(&body);
    let recorded = data.get_u64_le();
    if recorded != expected {
        return Err(StoreError::Codec(format!(
            "catalog checksum mismatch: snapshot records {recorded:#018x} \
             but payload hashes to {expected:#018x} (corrupted snapshot)"
        )));
    }
    let mut data = body;
    if RETIRED_CATALOG.iter().any(|m| &data[..4] == *m) {
        return Err(StoreError::UnsupportedSnapshot {
            found: String::from_utf8_lossy(&data[..4]).into_owned(),
            supported: "VOHG".to_string(),
        });
    }
    if &data[..4] != b"VOHG" {
        return Err(StoreError::Codec(format!(
            "bad catalog magic {:?}, expected VOHG",
            &data[..4]
        )));
    }
    data.advance(4); // magic, already verified
    let catalog = crate::catalog::Catalog::new();
    need(&data, 4, "1-D entry count")?;
    let n1 = data.get_u32_le() as usize;
    for _ in 0..n1 {
        let key = get_key(&mut data)?;
        let spec = get_spec(&mut data)?;
        let hist = decode_histogram(get_blob(&mut data)?)?;
        catalog.put_with_spec(key, hist, spec);
    }
    need(&data, 4, "2-D entry count")?;
    let n2 = data.get_u32_le() as usize;
    for _ in 0..n2 {
        let key = get_key(&mut data)?;
        let spec = get_spec(&mut data)?;
        let hist = decode_matrix_histogram(get_blob(&mut data)?)?;
        catalog.put_matrix_with_spec(key, hist, spec);
    }
    if data.has_remaining() {
        return Err(StoreError::Codec(format!(
            "{} trailing byte(s) after catalog",
            data.remaining()
        )));
    }
    Ok(catalog)
}
