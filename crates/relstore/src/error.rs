//! Error type for the relational substrate.

use std::fmt;

/// Errors produced by the storage, statistics, and catalog layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A named column does not exist in the relation's schema.
    UnknownColumn {
        /// The column that was requested.
        column: String,
        /// The relation it was requested from.
        relation: String,
    },
    /// Row data did not match the schema arity.
    ArityMismatch {
        /// Columns in the schema.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
    /// A catalog lookup missed.
    MissingStatistics {
        /// Catalog key (relation, columns) that was requested.
        key: String,
    },
    /// Binary decoding failed.
    Codec(String),
    /// A filesystem operation on the durable catalog failed (the
    /// `std::io::Error` is flattened to its message so this enum stays
    /// `Clone + PartialEq` for test assertions).
    Io(String),
    /// A histogram or frequency-structure error bubbled up.
    Hist(String),
    /// The durable catalog is in read-only degraded mode after a
    /// failed durable write (e.g. ENOSPC on a journal fsync). Reads
    /// keep serving the last committed state; writes are refused until
    /// a probe (a successful checkpoint) restores read-write.
    ReadOnly,
    /// An invalid parameter (e.g. empty sample, zero rows requested).
    InvalidParameter(String),
    /// A snapshot carries a recognised but no-longer-supported format
    /// magic (e.g. a pre-bounds `VOHE` catalog). Distinguished from
    /// [`StoreError::Codec`] so callers can tell "re-run ANALYZE to
    /// regenerate" apart from corruption.
    UnsupportedSnapshot {
        /// The magic found in the snapshot.
        found: String,
        /// The magic this build reads and writes.
        supported: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownColumn { column, relation } => {
                write!(f, "relation '{relation}' has no column '{column}'")
            }
            StoreError::ArityMismatch { expected, got } => {
                write!(f, "row has {got} values but schema has {expected} columns")
            }
            StoreError::MissingStatistics { key } => {
                write!(f, "no statistics in catalog for {key}")
            }
            StoreError::Codec(msg) => write!(f, "codec error: {msg}"),
            StoreError::Io(msg) => write!(f, "io error: {msg}"),
            StoreError::Hist(msg) => write!(f, "histogram error: {msg}"),
            StoreError::ReadOnly => {
                write!(
                    f,
                    "catalog is read-only (degraded after a durable-write failure); \
                     retry after the next successful checkpoint probe"
                )
            }
            StoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            StoreError::UnsupportedSnapshot { found, supported } => {
                write!(
                    f,
                    "snapshot format '{found}' is no longer supported (this build reads \
                     '{supported}'); re-run ANALYZE to regenerate statistics"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<vopt_hist::HistError> for StoreError {
    fn from(e: vopt_hist::HistError) -> Self {
        StoreError::Hist(e.to_string())
    }
}

impl From<freqdist::FreqError> for StoreError {
    fn from(e: freqdist::FreqError) -> Self {
        StoreError::Hist(e.to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
