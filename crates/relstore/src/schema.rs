//! Relation schemas.
//!
//! Columns hold dictionary-encoded `u64` domain values (§2.2's domains
//! `D_j` — the numbering of attribute values is arbitrary and need not
//! reflect any natural ordering, which is exactly the paper's modelling
//! assumption for equi-width/equi-depth comparisons).

use crate::error::{Result, StoreError};
use serde::{Deserialize, Serialize};

/// One column of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name, unique within the schema.
    pub name: String,
}

impl ColumnDef {
    /// Creates a column definition.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

/// An ordered list of named columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Builds a schema from column names. Duplicate names are rejected.
    pub fn new<I, S>(names: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let columns: Vec<ColumnDef> = names.into_iter().map(ColumnDef::new).collect();
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|other| other.name == c.name) {
                return Err(StoreError::InvalidParameter(format!(
                    "duplicate column name '{}'",
                    c.name
                )));
            }
        }
        Ok(Self { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Index of a named column.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(["a", "b", "c"]).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::new(["a", "a"]).is_err());
    }

    #[test]
    fn empty_schema_allowed() {
        let s = Schema::new(Vec::<String>::new()).unwrap();
        assert_eq!(s.arity(), 0);
    }
}
