//! Minimal CSV import/export for relations.
//!
//! A deliberately small dialect — header line of column names, `u64`
//! cells, comma separators, no quoting — enough to move synthetic
//! relations in and out of the `histctl` tool and external plotting
//! scripts without adding a CSV dependency.

use crate::error::{Result, StoreError};
use crate::relation::Relation;
use crate::schema::Schema;
use std::io::{BufRead, BufWriter, Write};

/// Writes a relation as CSV to any writer (header + one line per tuple).
pub fn write_csv<W: Write>(relation: &Relation, out: W) -> Result<()> {
    let mut out = BufWriter::new(out);
    let header: Vec<&str> = relation
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    writeln!(out, "{}", header.join(","))
        .map_err(|e| StoreError::InvalidParameter(format!("write: {e}")))?;
    for row in relation.iter_rows() {
        let cells: Vec<String> = row.iter().map(u64::to_string).collect();
        writeln!(out, "{}", cells.join(","))
            .map_err(|e| StoreError::InvalidParameter(format!("write: {e}")))?;
    }
    out.flush()
        .map_err(|e| StoreError::InvalidParameter(format!("flush: {e}")))?;
    Ok(())
}

/// Reads a relation from CSV: a header of column names followed by rows
/// of `u64` cells. Blank lines are skipped; ragged or non-numeric rows
/// are errors with line numbers.
pub fn read_csv<R: BufRead>(input: R, name: &str) -> Result<Relation> {
    let mut lines = input.lines().enumerate();
    let header = loop {
        match lines.next() {
            Some((_, Ok(line))) if line.trim().is_empty() => continue,
            Some((_, Ok(line))) => break line,
            Some((n, Err(e))) => {
                return Err(StoreError::InvalidParameter(format!("line {}: {e}", n + 1)))
            }
            None => return Err(StoreError::InvalidParameter("empty input".into())),
        }
    };
    let columns: Vec<String> = header.split(',').map(|c| c.trim().to_string()).collect();
    let arity = columns.len();
    let schema = Schema::new(columns)?;
    let mut relation = Relation::empty(name, schema);
    for (n, line) in lines {
        let line =
            line.map_err(|e| StoreError::InvalidParameter(format!("line {}: {e}", n + 1)))?;
        if line.trim().is_empty() {
            continue;
        }
        let row: std::result::Result<Vec<u64>, _> =
            line.split(',').map(|c| c.trim().parse::<u64>()).collect();
        let row = row.map_err(|e| StoreError::InvalidParameter(format!("line {}: {e}", n + 1)))?;
        if row.len() != arity {
            return Err(StoreError::ArityMismatch {
                expected: arity,
                got: row.len(),
            });
        }
        relation.push_row(&row)?;
    }
    Ok(relation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut r = Relation::empty("r", schema);
        r.push_row(&[1, 10]).unwrap();
        r.push_row(&[2, 20]).unwrap();
        r
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let mut buf = Vec::new();
        write_csv(&r, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), "r").unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn format_is_plain_csv() {
        let mut buf = Vec::new();
        write_csv(&sample(), &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,10\n2,20\n");
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "a,b\n\n1,2\n\n3,4\n";
        let r = read_csv(text.as_bytes(), "r").unwrap();
        assert_eq!(r.num_rows(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = read_csv("a,b\n1,x\n".as_bytes(), "r").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = read_csv("a,b\n1\n".as_bytes(), "r").unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { .. }));
        assert!(read_csv("".as_bytes(), "r").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let r = read_csv(" a , b \n 1 , 2 \n".as_bytes(), "r").unwrap();
        assert_eq!(r.schema().index_of("a"), Some(0));
        assert_eq!(r.column(1), &[2]);
    }
}
