//! The background statistics-maintenance daemon.
//!
//! §2.3 of the paper defers "appropriate schedules of database update
//! propagation to histograms"; [`crate::maintenance::RefreshPolicy`] is
//! the threshold rule such a schedule applies, and this module is the
//! schedule itself: an always-on loop that sweeps registered columns,
//! re-ANALYZEs the stale ones through a [`DurableCatalog`] (so every
//! refresh is journaled), and keeps itself healthy when refreshes fail:
//!
//! * **Retry with exponential backoff + jitter** — a failed refresh
//!   parks the column for `base · 2^(failures−1)` ticks (capped) plus a
//!   seeded-random jitter tick, so a flapping column cannot hot-loop.
//!   The jitter RNG is a deterministic [`StdRng`]: the same seed and
//!   the same failure schedule replay the exact same trace, which the
//!   determinism test pins.
//! * **Circuit breaker** — after `breaker_threshold` *consecutive*
//!   failures the column's breaker opens: the sweep skips it entirely
//!   for `breaker_cooldown_ticks`, then lets one half-open probe
//!   through. A successful probe closes the breaker; a failed one
//!   reopens it. One poisoned column can therefore never starve the
//!   rest of the sweep.
//! * **Journal compaction** — when the store's journal exceeds
//!   `compaction_bytes`, the sweep checkpoints it into a fresh
//!   snapshot generation ([`DurableCatalog::checkpoint`]).
//! * **Refresh prioritization** — an optional [`RefreshPrioritizer`]
//!   reorders each sweep so the most urgent columns refresh first.
//!   [`DriftPrioritizer`] feeds the estimation-quality drift watchdog's
//!   per-column crossing counts back into the schedule: columns whose
//!   estimates are drifting get re-ANALYZEd ahead of the rest. Only the
//!   visit *order* is wired here — what "urgent" means is the
//!   prioritizer's policy, the seam a future self-tuning layer plugs
//!   into. With no prioritizer set, sweeps visit registration order
//!   exactly as before.
//!
//! [`DaemonCore`] is the pure, single-threaded state machine on a
//! virtual tick clock — fully deterministic and driven directly by
//! tests and the oracle. [`Daemon`] wraps it in a thread fed by a
//! `crossbeam` channel: each tick is one `recv_timeout` interval, and
//! [`Daemon::sweep_now`] / [`Daemon::stop`] are just messages.

use crate::catalog::StatKey;
use crate::maintenance::{MaintenanceOutcome, RefreshPolicy};
use crate::relation::Relation;
use crate::wal::DurableCatalog;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;
use std::time::Duration;
use vopt_hist::feedback::TuneConfig;
use vopt_hist::BuilderSpec;

/// Tuning knobs for the maintenance daemon.
#[derive(Debug, Clone, PartialEq)]
pub struct DaemonConfig {
    /// When a column's statistics are due for a rebuild.
    pub policy: RefreshPolicy,
    /// First-retry delay in ticks after a failure (doubles per
    /// consecutive failure).
    pub base_backoff_ticks: u64,
    /// Backoff cap in ticks (before jitter).
    pub max_backoff_ticks: u64,
    /// Seed of the jitter RNG; same seed + same failure schedule →
    /// identical trace.
    pub jitter_seed: u64,
    /// Consecutive failures that open a column's circuit breaker.
    pub breaker_threshold: u64,
    /// Ticks an open breaker waits before letting a half-open probe
    /// through.
    pub breaker_cooldown_ticks: u64,
    /// Journal size (bytes) above which a sweep checkpoints the store.
    pub compaction_bytes: u64,
    /// Whether sweeps run the feedback tune pass: after the refresh
    /// pass, each registered column's latest per-column (estimate,
    /// actual) quality observation is fed through
    /// [`DurableCatalog::tune_column`]. Off by default — with tuning
    /// disabled, sweeps are bit-for-bit the pre-feedback behaviour
    /// (identical traces, identical journals).
    pub self_tune: bool,
    /// Tuner parameters for the feedback pass.
    pub tune: TuneConfig,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            policy: RefreshPolicy::default(),
            base_backoff_ticks: 1,
            max_backoff_ticks: 64,
            jitter_seed: 0,
            breaker_threshold: 3,
            breaker_cooldown_ticks: 8,
            compaction_bytes: 1 << 20,
            self_tune: false,
            tune: TuneConfig::default(),
        }
    }
}

/// Circuit-breaker state of one maintained column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Refreshes flow normally.
    Closed,
    /// Too many consecutive failures; the sweep skips the column until
    /// the stored tick, then probes.
    Open {
        /// First tick at which a half-open probe is allowed.
        until: u64,
    },
    /// Cooldown elapsed; exactly one probe refresh is allowed through.
    HalfOpen,
}

/// One entry in the daemon's deterministic event trace. The trace is
/// the daemon's observable behaviour — the determinism test asserts
/// trace equality across replays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DaemonEvent {
    /// A refresh ran and stored a new histogram.
    Refreshed {
        /// Column key display (`rel(col)`).
        column: String,
        /// Virtual tick of the sweep.
        tick: u64,
    },
    /// A refresh failed; the column backs off.
    RefreshFailed {
        /// Column key display.
        column: String,
        /// Virtual tick of the sweep.
        tick: u64,
        /// The error string.
        error: String,
        /// Next tick at which a retry is allowed.
        retry_at: u64,
    },
    /// The column's breaker opened (threshold reached, or a half-open
    /// probe failed).
    BreakerOpened {
        /// Column key display.
        column: String,
        /// Virtual tick of the sweep.
        tick: u64,
        /// First tick at which a probe is allowed.
        until: u64,
    },
    /// Cooldown elapsed; the next refresh of this column is a probe.
    BreakerHalfOpen {
        /// Column key display.
        column: String,
        /// Virtual tick of the sweep.
        tick: u64,
    },
    /// A half-open probe succeeded; normal service resumed.
    BreakerClosed {
        /// Column key display.
        column: String,
        /// Virtual tick of the sweep.
        tick: u64,
    },
    /// The journal crossed the compaction threshold and was
    /// checkpointed into a new snapshot generation.
    Compacted {
        /// Virtual tick of the sweep.
        tick: u64,
        /// Journal bytes at the moment the threshold fired.
        journal_bytes: u64,
    },
    /// A threshold-triggered checkpoint failed (e.g. a kill point).
    CompactionFailed {
        /// Virtual tick of the sweep.
        tick: u64,
        /// The error string.
        error: String,
    },
    /// The feedback pass journaled and applied a tune step.
    Tuned {
        /// Column key display (`rel(col)`).
        column: String,
        /// Virtual tick of the sweep.
        tick: u64,
    },
    /// The feedback pass evaluated a column's latest observation but
    /// changed nothing.
    TuneSkipped {
        /// Column key display.
        column: String,
        /// Virtual tick of the sweep.
        tick: u64,
        /// Stable skip reason (`negligible_error`, `zero_mass`, ...).
        reason: String,
    },
    /// The feedback pass tried to tune but the store refused (e.g.
    /// read-only degraded mode or a journal fault).
    TuneFailed {
        /// Column key display.
        column: String,
        /// Virtual tick of the sweep.
        tick: u64,
        /// The error string.
        error: String,
    },
}

/// A column the daemon maintains.
#[derive(Clone)]
pub struct ColumnTask {
    /// The relation to rescan (immutable snapshot shared with callers).
    pub relation: Arc<Relation>,
    /// The column to maintain.
    pub column: String,
    /// Histogram class to build when the column has no recorded spec.
    pub spec: BuilderSpec,
}

impl ColumnTask {
    fn key(&self) -> StatKey {
        StatKey::new(self.relation.name(), &[self.column.as_str()])
    }

    fn display(&self) -> String {
        format!("{}({})", self.relation.name(), self.column)
    }
}

struct ColumnState {
    /// Earliest tick at which a refresh may be attempted (backoff).
    retry_at: u64,
    /// Consecutive failures since the last success.
    failures: u64,
    breaker: BreakerState,
    /// Quality-scope observation count already consumed by the feedback
    /// pass. Each recorded (estimate, actual) pair is fed to the tuner
    /// at most once — a sweep over an idle workload tunes nothing, and
    /// one observation can never drive more than one bounded step.
    tuned_at_count: u64,
}

/// Ranks maintained columns for sweep order: higher priority refreshes
/// earlier within a sweep. Ties (and everything, with no prioritizer
/// set) keep registration order — the sort is stable, so an all-zero
/// prioritizer is behaviourally identical to none.
pub trait RefreshPrioritizer: Send + Sync {
    /// Priority of `relation.column`; higher sweeps earlier.
    fn priority(&self, relation: &str, column: &str) -> u64;
}

/// A [`RefreshPrioritizer`] driven by the estimation-quality drift
/// watchdog: a column's priority is how many times its per-column
/// `col:<relation>.<column>` EWMA Q-error has crossed the drift
/// threshold. Columns nobody has flagged rank 0 and keep registration
/// order.
#[derive(Debug, Default, Clone, Copy)]
pub struct DriftPrioritizer;

impl RefreshPrioritizer for DriftPrioritizer {
    fn priority(&self, relation: &str, column: &str) -> u64 {
        obs::quality::scope_snapshot(&format!("col:{relation}.{column}"))
            .map_or(0, |s| s.drift_events)
    }
}

/// The deterministic sweep state machine. Drive it directly (tests,
/// oracle) via [`DaemonCore::tick_injected`], or against a real store
/// via [`DaemonCore::tick`]; wrap it in [`Daemon`] for the always-on
/// thread.
pub struct DaemonCore {
    config: DaemonConfig,
    rng: StdRng,
    tasks: Vec<ColumnTask>,
    states: Vec<ColumnState>,
    trace: Vec<DaemonEvent>,
    tick: u64,
    prioritizer: Option<Arc<dyn RefreshPrioritizer>>,
}

impl DaemonCore {
    /// A core with no registered columns at virtual tick 0.
    pub fn new(config: DaemonConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.jitter_seed);
        Self {
            config,
            rng,
            tasks: Vec::new(),
            states: Vec::new(),
            trace: Vec::new(),
            tick: 0,
            prioritizer: None,
        }
    }

    /// Installs (replacing any previous) the sweep-order prioritizer.
    pub fn set_prioritizer(&mut self, prioritizer: Arc<dyn RefreshPrioritizer>) {
        self.prioritizer = Some(prioritizer);
    }

    /// Registers a column; sweeps visit columns in registration order.
    pub fn register(&mut self, relation: Arc<Relation>, column: impl Into<String>) {
        self.register_with_spec(relation, column, BuilderSpec::VOptEndBiased(8));
    }

    /// [`DaemonCore::register`] with an explicit fallback spec.
    pub fn register_with_spec(
        &mut self,
        relation: Arc<Relation>,
        column: impl Into<String>,
        spec: BuilderSpec,
    ) {
        self.tasks.push(ColumnTask {
            relation,
            column: column.into(),
            spec,
        });
        self.states.push(ColumnState {
            retry_at: 0,
            failures: 0,
            breaker: BreakerState::Closed,
            tuned_at_count: 0,
        });
    }

    /// The event trace so far (append-only).
    pub fn trace(&self) -> &[DaemonEvent] {
        &self.trace
    }

    /// Current virtual tick (number of sweeps run).
    pub fn now(&self) -> u64 {
        self.tick
    }

    /// Breaker state per registered column, in registration order.
    pub fn breaker_states(&self) -> Vec<(StatKey, BreakerState)> {
        self.tasks
            .iter()
            .zip(&self.states)
            .map(|(t, s)| (t.key(), s.breaker))
            .collect()
    }

    /// How many breakers are currently in each state:
    /// `(closed, open, half_open)`.
    pub fn breaker_counts(&self) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for s in &self.states {
            match s.breaker {
                BreakerState::Closed => counts.0 += 1,
                BreakerState::Open { .. } => counts.1 += 1,
                BreakerState::HalfOpen => counts.2 += 1,
            }
        }
        counts
    }

    fn backoff_ticks(&mut self, failures: u64) -> u64 {
        let base = self.config.base_backoff_ticks.max(1);
        let exp = failures.saturating_sub(1).min(63) as u32;
        let raw = base.saturating_mul(1u64 << exp.min(62));
        let capped = raw.min(self.config.max_backoff_ticks.max(base));
        // Jitter desynchronises columns that failed on the same tick.
        capped + self.rng.random_range(0..=base)
    }

    /// One sweep with an injected refresher — the deterministic test
    /// and oracle entry point. `refresh` is called once per column that
    /// is neither backing off nor breaker-skipped, in registration
    /// order (or prioritizer order when one is set).
    pub fn tick_injected(
        &mut self,
        refresh: &mut dyn FnMut(&ColumnTask) -> crate::error::Result<MaintenanceOutcome>,
    ) {
        self.tick += 1;
        let now = self.tick;
        obs::trace::daemon_sweep(now);
        // Visit order: registration order, unless a prioritizer ranks
        // some columns hotter. The sort is stable, so equal priorities
        // (and the no-prioritizer case) never disturb the baseline
        // order — the determinism test's traces stay byte-identical.
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        if let Some(prioritizer) = &self.prioritizer {
            order.sort_by_key(|&i| {
                std::cmp::Reverse(
                    prioritizer.priority(self.tasks[i].relation.name(), &self.tasks[i].column),
                )
            });
        }
        for i in order {
            let column = self.tasks[i].display();
            // Breaker gate: skip while open, arm a probe once cooled.
            match self.states[i].breaker {
                BreakerState::Open { until } if now < until => continue,
                BreakerState::Open { .. } => {
                    self.states[i].breaker = BreakerState::HalfOpen;
                    obs::trace::breaker(&column, "half_open");
                    self.trace.push(DaemonEvent::BreakerHalfOpen {
                        column: column.clone(),
                        tick: now,
                    });
                }
                _ => {}
            }
            // Backoff gate.
            if now < self.states[i].retry_at {
                continue;
            }
            let probing = self.states[i].breaker == BreakerState::HalfOpen;
            match refresh(&self.tasks[i]) {
                Ok(outcome) => {
                    self.states[i].failures = 0;
                    self.states[i].retry_at = 0;
                    if probing {
                        self.states[i].breaker = BreakerState::Closed;
                        obs::trace::breaker(&column, "closed");
                        self.trace.push(DaemonEvent::BreakerClosed {
                            column: column.clone(),
                            tick: now,
                        });
                    }
                    if outcome == MaintenanceOutcome::Refreshed {
                        obs::counter("daemon_refresh_total").inc();
                        self.trace
                            .push(DaemonEvent::Refreshed { column, tick: now });
                    }
                }
                Err(e) => {
                    obs::counter("daemon_refresh_failure_total").inc();
                    self.states[i].failures += 1;
                    let failures = self.states[i].failures;
                    let retry_at = now + self.backoff_ticks(failures);
                    self.states[i].retry_at = retry_at;
                    self.trace.push(DaemonEvent::RefreshFailed {
                        column: column.clone(),
                        tick: now,
                        error: e.to_string(),
                        retry_at,
                    });
                    if probing || failures >= self.config.breaker_threshold {
                        let until = now + self.config.breaker_cooldown_ticks;
                        self.states[i].breaker = BreakerState::Open { until };
                        obs::trace::breaker(&column, "open");
                        self.trace.push(DaemonEvent::BreakerOpened {
                            column,
                            tick: now,
                            until,
                        });
                    }
                }
            }
        }
        let (closed, open, half_open) = self.breaker_counts();
        obs::gauge("daemon_breaker_closed").set(closed as f64);
        obs::gauge("daemon_breaker_open").set(open as f64);
        obs::gauge("daemon_breaker_half_open").set(half_open as f64);
    }

    /// One production sweep against a durable store: refreshes go
    /// through [`DurableCatalog::maintain_column`] (journaled, failure
    /// streaks recorded), then the journal is compacted if it crossed
    /// the configured threshold. When the store has degraded to
    /// read-only (a durable write failed), the sweep first probes it
    /// with a checkpoint via [`DurableCatalog::probe_restore`]: a
    /// success restores read-write before any refresh runs, so one
    /// clean sweep is enough to recover from a transient disk fault.
    pub fn tick(&mut self, store: &DurableCatalog) {
        let _span = obs::span("daemon_sweep");
        let started = std::time::Instant::now();
        store.probe_restore();
        let policy = self.config.policy;
        self.tick_injected(&mut |task| {
            store.maintain_column(&task.relation, &task.column, task.spec, &policy)
        });
        if self.config.self_tune {
            self.tune_pass(store);
        }
        let journal_bytes = store.journal_bytes();
        if journal_bytes >= self.config.compaction_bytes {
            match store.checkpoint() {
                Ok(()) => self.trace.push(DaemonEvent::Compacted {
                    tick: self.tick,
                    journal_bytes,
                }),
                Err(e) => self.trace.push(DaemonEvent::CompactionFailed {
                    tick: self.tick,
                    error: e.to_string(),
                }),
            }
        }
        obs::histogram("daemon_sweep_seconds").observe(started.elapsed());
    }

    /// The feedback pass of one sweep (only with
    /// [`DaemonConfig::self_tune`] on): each registered column's
    /// *newest unconsumed* per-column quality observation — the
    /// `col:<relation>.<column>` scope the estimator's Q-error monitor
    /// feeds — is run through [`DurableCatalog::tune_column`], which
    /// journals and applies a bounded, mass-conserving histogram
    /// adjustment. Runs after the refresh pass so a column that was
    /// just fully re-ANALYZEd skips on the dead zone rather than
    /// tuning a fresh build against a pre-refresh observation.
    fn tune_pass(&mut self, store: &DurableCatalog) {
        let now = self.tick;
        for (task, state) in self.tasks.iter().zip(self.states.iter_mut()) {
            let column = task.display();
            let scope = format!("col:{}.{}", task.relation.name(), task.column);
            let Some(snap) = obs::quality::scope_snapshot(&scope) else {
                continue;
            };
            if snap.count <= state.tuned_at_count {
                continue;
            }
            state.tuned_at_count = snap.count;
            match store.tune_column(
                &task.key(),
                snap.last_estimate,
                snap.last_actual,
                &self.config.tune,
            ) {
                Ok(Ok(_)) => self.trace.push(DaemonEvent::Tuned { column, tick: now }),
                Ok(Err(skip)) => self.trace.push(DaemonEvent::TuneSkipped {
                    column,
                    tick: now,
                    reason: skip.reason().to_string(),
                }),
                Err(e) => self.trace.push(DaemonEvent::TuneFailed {
                    column,
                    tick: now,
                    error: e.to_string(),
                }),
            }
        }
    }
}

/// A control message for the daemon thread.
enum Command {
    SweepNow,
    Stop,
}

/// The always-on maintenance thread: a [`DaemonCore`] swept once per
/// `tick_interval` (or on demand), fed through a `crossbeam` channel.
///
/// Dropping the handle stops the thread; prefer [`Daemon::stop`] to
/// also get the core (and its trace) back.
pub struct Daemon {
    sender: crossbeam::channel::Sender<Command>,
    handle: Option<std::thread::JoinHandle<DaemonCore>>,
}

impl Daemon {
    /// Spawns the sweep thread over `store`.
    pub fn spawn(
        mut core: DaemonCore,
        store: Arc<DurableCatalog>,
        tick_interval: Duration,
    ) -> Daemon {
        let (sender, receiver) = crossbeam::channel::unbounded();
        let handle = std::thread::Builder::new()
            .name("stats-maintenance".into())
            .spawn(move || {
                use crossbeam::channel::RecvTimeoutError;
                // Stop (or a disconnected channel) ends the loop; an
                // explicit sweep request or the tick timeout runs one.
                while let Ok(Command::SweepNow) | Err(RecvTimeoutError::Timeout) =
                    receiver.recv_timeout(tick_interval)
                {
                    core.tick(&store);
                }
                core
            })
            .expect("spawn maintenance daemon thread");
        Daemon {
            sender,
            handle: Some(handle),
        }
    }

    /// Requests an immediate sweep (non-blocking). Returns `false` if
    /// the thread has already exited.
    pub fn sweep_now(&self) -> bool {
        self.sender.send(Command::SweepNow).is_ok()
    }

    /// Stops the thread and returns the core with its final trace.
    pub fn stop(mut self) -> DaemonCore {
        let _ = self.sender.send(Command::Stop);
        self.handle
            .take()
            .expect("daemon thread handle")
            .join()
            .expect("maintenance daemon thread panicked")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.sender.send(Command::Stop);
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StoreError;
    use crate::generate::relation_from_frequency_set;
    use freqdist::FrequencySet;

    const SPEC: BuilderSpec = BuilderSpec::VOptEndBiased(3);

    fn relation() -> Arc<Relation> {
        let freqs = FrequencySet::new(vec![50, 30, 10, 5, 5]);
        Arc::new(relation_from_frequency_set("t", "c", &freqs, 3).unwrap())
    }

    fn core_with_one_column(config: DaemonConfig) -> DaemonCore {
        let mut core = DaemonCore::new(config);
        core.register_with_spec(relation(), "c", SPEC);
        core
    }

    /// Runs `ticks` sweeps where the refresher fails whenever the
    /// schedule says so (schedule indexed by tick-1).
    fn run_schedule(core: &mut DaemonCore, schedule: &[bool]) {
        for &fail in schedule {
            core.tick_injected(&mut |_| {
                if fail {
                    Err(StoreError::Io("injected failure".into()))
                } else {
                    Ok(MaintenanceOutcome::Refreshed)
                }
            });
        }
    }

    #[test]
    fn same_seed_and_schedule_produce_identical_traces() {
        let config = DaemonConfig {
            jitter_seed: 42,
            base_backoff_ticks: 2,
            ..DaemonConfig::default()
        };
        let schedule: Vec<bool> = (0..40).map(|i| i % 3 != 2).collect();
        let mut a = core_with_one_column(config.clone());
        let mut b = core_with_one_column(config.clone());
        run_schedule(&mut a, &schedule);
        run_schedule(&mut b, &schedule);
        assert!(!a.trace().is_empty());
        assert_eq!(a.trace(), b.trace());
        // A different jitter seed diverges (backoff ticks differ), which
        // proves the jitter is real and the determinism is seed-scoped.
        let mut c = core_with_one_column(DaemonConfig {
            jitter_seed: 43,
            ..config
        });
        run_schedule(&mut c, &schedule);
        assert_ne!(a.trace(), c.trace());
    }

    #[test]
    fn breaker_opens_after_threshold_probes_and_closes() {
        let config = DaemonConfig {
            breaker_threshold: 2,
            breaker_cooldown_ticks: 3,
            base_backoff_ticks: 1,
            max_backoff_ticks: 1,
            ..DaemonConfig::default()
        };
        let mut core = core_with_one_column(config);
        let mut calls = 0u64;
        // Fail until the breaker opens.
        for _ in 0..8 {
            core.tick_injected(&mut |_| {
                calls += 1;
                Err(StoreError::Io("down".into()))
            });
            if core.breaker_counts().1 == 1 {
                break;
            }
        }
        let (_, open, _) = core.breaker_counts();
        assert_eq!(open, 1, "breaker should be open; trace: {:?}", core.trace());
        let calls_when_opened = calls;
        // While open, sweeps skip the column entirely.
        core.tick_injected(&mut |_| {
            calls += 1;
            Err(StoreError::Io("down".into()))
        });
        assert_eq!(calls, calls_when_opened);
        // After the cooldown, a half-open probe goes through; let it
        // succeed and the breaker closes.
        for _ in 0..6 {
            core.tick_injected(&mut |_| {
                calls += 1;
                Ok(MaintenanceOutcome::Refreshed)
            });
            if core.breaker_counts().0 == 1 {
                break;
            }
        }
        assert_eq!(core.breaker_counts(), (1, 0, 0));
        assert!(core
            .trace()
            .iter()
            .any(|e| matches!(e, DaemonEvent::BreakerHalfOpen { .. })));
        assert!(core
            .trace()
            .iter()
            .any(|e| matches!(e, DaemonEvent::BreakerClosed { .. })));
    }

    #[test]
    fn failed_probe_reopens_the_breaker() {
        let config = DaemonConfig {
            breaker_threshold: 1,
            breaker_cooldown_ticks: 2,
            base_backoff_ticks: 1,
            max_backoff_ticks: 1,
            ..DaemonConfig::default()
        };
        let mut core = core_with_one_column(config);
        for _ in 0..8 {
            core.tick_injected(&mut |_| Err(StoreError::Io("down".into())));
        }
        let opens = core
            .trace()
            .iter()
            .filter(|e| matches!(e, DaemonEvent::BreakerOpened { .. }))
            .count();
        assert!(
            opens >= 2,
            "probe failures must reopen; trace: {:?}",
            core.trace()
        );
        assert_eq!(core.breaker_counts().1, 1);
    }

    #[test]
    fn backoff_parks_failing_column_between_retries() {
        let config = DaemonConfig {
            base_backoff_ticks: 4,
            max_backoff_ticks: 4,
            breaker_threshold: u64::MAX, // isolate backoff from breaker
            ..DaemonConfig::default()
        };
        let mut core = core_with_one_column(config);
        let mut calls = 0u64;
        for _ in 0..6 {
            core.tick_injected(&mut |_| {
                calls += 1;
                Err(StoreError::Io("down".into()))
            });
        }
        // First sweep attempts; backoff ≥ 4 ticks parks the next
        // several sweeps, so 6 sweeps can attempt at most twice.
        assert!(calls <= 2, "expected ≤ 2 attempts in 6 ticks, got {calls}");
    }

    #[test]
    fn prioritizer_reorders_the_sweep_stably() {
        struct Fixed(Vec<(&'static str, u64)>);
        impl RefreshPrioritizer for Fixed {
            fn priority(&self, _relation: &str, column: &str) -> u64 {
                self.0
                    .iter()
                    .find(|(c, _)| *c == column)
                    .map_or(0, |&(_, p)| p)
            }
        }
        let visit_order = |prioritizer: Option<Arc<dyn RefreshPrioritizer>>| {
            let mut core = DaemonCore::new(DaemonConfig::default());
            for col in ["c0", "c1", "c2"] {
                core.register_with_spec(relation(), col, SPEC);
            }
            if let Some(p) = prioritizer {
                core.set_prioritizer(p);
            }
            let mut visited = Vec::new();
            core.tick_injected(&mut |task| {
                visited.push(task.column.clone());
                Ok(MaintenanceOutcome::Refreshed)
            });
            visited
        };
        // No prioritizer: registration order.
        assert_eq!(visit_order(None), ["c0", "c1", "c2"]);
        // An all-zero prioritizer is behaviourally identical to none.
        assert_eq!(
            visit_order(Some(Arc::new(Fixed(vec![])))),
            ["c0", "c1", "c2"]
        );
        // A hot column jumps the queue; ties keep registration order.
        assert_eq!(
            visit_order(Some(Arc::new(Fixed(vec![("c2", 5)])))),
            ["c2", "c0", "c1"]
        );
    }

    #[test]
    fn drift_prioritizer_promotes_flagged_columns() {
        // Drive the quality monitor's drift watchdog for t.c (the scope
        // DriftPrioritizer reads for relation "t", column "c").
        let p = DriftPrioritizer;
        let before = p.priority("t", "c");
        obs::quality::set_drift_config(obs::quality::DriftConfig {
            alpha: 1.0,
            threshold_q: 2.0,
            min_samples: 1,
        });
        obs::record_quality("col:t.c", 100.0, 1.0);
        obs::quality::set_drift_config(obs::quality::DriftConfig::default());
        assert_eq!(p.priority("t", "c"), before + 1);
        assert_eq!(p.priority("t", "never_recorded"), 0);
    }

    #[test]
    fn daemon_thread_sweeps_and_stops_via_channel() {
        let scratch =
            std::env::temp_dir().join(format!("relstore-daemon-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        let store = Arc::new(DurableCatalog::open(&scratch).unwrap());
        let rel = relation();
        let mut core = DaemonCore::new(DaemonConfig::default());
        core.register_with_spec(Arc::clone(&rel), "c", SPEC);
        // A long interval so only the explicit sweep_now drives ticks —
        // keeps the test fast and the tick count predictable.
        let daemon = Daemon::spawn(core, Arc::clone(&store), Duration::from_secs(3600));
        assert!(daemon.sweep_now());
        let key = StatKey::new("t", &["c"]);
        // The first sweep ANALYZEs the never-built column.
        for _ in 0..200 {
            if store.catalog().get(&key).is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(store.catalog().get(&key).is_ok());
        let core = daemon.stop();
        assert!(core
            .trace()
            .iter()
            .any(|e| matches!(e, DaemonEvent::Refreshed { .. })));
        let _ = std::fs::remove_dir_all(&scratch);
    }

    #[test]
    fn sweep_compacts_oversized_journal() {
        let scratch =
            std::env::temp_dir().join(format!("relstore-daemon-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&scratch);
        let store = DurableCatalog::open(&scratch).unwrap();
        let rel = relation();
        let mut core = DaemonCore::new(DaemonConfig {
            compaction_bytes: 1, // any journaled byte triggers
            ..DaemonConfig::default()
        });
        core.register_with_spec(Arc::clone(&rel), "c", SPEC);
        core.tick(&store); // first ANALYZE journals a put → compaction
        assert!(core
            .trace()
            .iter()
            .any(|e| matches!(e, DaemonEvent::Compacted { .. })));
        assert_eq!(store.generation(), 1);
        assert_eq!(store.journal_bytes(), 0);
        let _ = std::fs::remove_dir_all(&scratch);
    }
}
