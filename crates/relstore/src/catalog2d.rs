//! Two-dimensional catalog histograms (attribute pairs).
//!
//! Middle relations of a chain query need statistics over *pairs* of
//! join attributes (§2.2's two-dimensional frequency matrices; compare
//! Muralikrishna & DeWitt's multidimensional histograms, which the paper
//! cites as related work). [`StoredMatrixHistogram`] is the 2-D analogue
//! of [`crate::catalog::StoredHistogram`]: bucket averages plus explicit
//! `(value₁, value₂) → bucket` exceptions for everything outside the
//! largest bucket.

use crate::error::{Result, StoreError};
use serde::{Deserialize, Serialize};
use vopt_hist::MatrixHistogram;

/// A 2-D histogram in the compact catalog layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoredMatrixHistogram {
    bucket_avgs: Vec<u64>,
    default_bucket: u32,
    /// `(first value, second value, bucket)`, sorted by the value pair.
    exceptions: Vec<(u64, u64, u32)>,
}

impl StoredMatrixHistogram {
    /// Converts an analysis [`MatrixHistogram`] plus the two value
    /// dictionaries into the compact catalog form.
    ///
    /// `row_values[k]` / `col_values[l]` are the domain values of matrix
    /// cell `(k, l)`.
    pub fn from_matrix_histogram(
        row_values: &[u64],
        col_values: &[u64],
        hist: &MatrixHistogram,
    ) -> Result<Self> {
        if row_values.len() != hist.rows() || col_values.len() != hist.cols() {
            return Err(StoreError::InvalidParameter(format!(
                "dictionaries ({} x {}) do not match histogram shape ({} x {})",
                row_values.len(),
                col_values.len(),
                hist.rows(),
                hist.cols()
            )));
        }
        let inner = hist.inner();
        let bucket_avgs: Vec<u64> = inner
            .buckets()
            .iter()
            .map(|b| b.average_rounded())
            .collect();
        let default_bucket = inner
            .buckets()
            .iter()
            .enumerate()
            .max_by_key(|(_, b)| b.count())
            .map(|(i, _)| i as u32)
            .unwrap_or(0);
        let mut exceptions = Vec::new();
        for (k, &rv) in row_values.iter().enumerate() {
            for (l, &cv) in col_values.iter().enumerate() {
                let b = hist.bucket_of(k, l);
                if b != default_bucket {
                    exceptions.push((rv, cv, b));
                }
            }
        }
        exceptions.sort_unstable_by_key(|&(a, b, _)| (a, b));
        Ok(Self {
            bucket_avgs,
            default_bucket,
            exceptions,
        })
    }

    /// Reassembles from raw parts (used by the binary codec).
    pub fn from_parts(
        bucket_avgs: Vec<u64>,
        default_bucket: u32,
        exceptions: Vec<(u64, u64, u32)>,
    ) -> Result<Self> {
        let n = bucket_avgs.len();
        if n == 0 {
            return Err(StoreError::InvalidParameter(
                "a stored histogram needs at least one bucket".into(),
            ));
        }
        if (default_bucket as usize) >= n {
            return Err(StoreError::InvalidParameter(format!(
                "default bucket {default_bucket} out of range 0..{n}"
            )));
        }
        for w in exceptions.windows(2) {
            if (w[0].0, w[0].1) >= (w[1].0, w[1].1) {
                return Err(StoreError::InvalidParameter(
                    "exception pairs must be strictly increasing".into(),
                ));
            }
        }
        if exceptions.iter().any(|&(_, _, b)| (b as usize) >= n) {
            return Err(StoreError::InvalidParameter(format!(
                "exception references bucket out of range 0..{n}"
            )));
        }
        Ok(Self {
            bucket_avgs,
            default_bucket,
            exceptions,
        })
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.bucket_avgs.len()
    }

    /// Bucket averages (paper-rounded).
    pub fn bucket_avgs(&self) -> &[u64] {
        &self.bucket_avgs
    }

    /// The implicit bucket id.
    pub fn default_bucket(&self) -> u32 {
        self.default_bucket
    }

    /// Explicitly listed `(value₁, value₂, bucket)` triples.
    pub fn exceptions(&self) -> &[(u64, u64, u32)] {
        &self.exceptions
    }

    /// The approximate frequency of a value pair.
    pub fn approx_frequency(&self, first: u64, second: u64) -> u64 {
        match self
            .exceptions
            .binary_search_by_key(&(first, second), |&(a, b, _)| (a, b))
        {
            Ok(i) => self.bucket_avgs[self.exceptions[i].2 as usize],
            Err(_) => self.bucket_avgs[self.default_bucket as usize],
        }
    }

    /// Catalog entries consumed (averages + listed pairs).
    pub fn storage_entries(&self) -> usize {
        self.bucket_avgs.len() + self.exceptions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freqdist::FreqMatrix;
    use vopt_hist::construct::v_opt_end_biased;
    use vopt_hist::RoundingMode;

    fn sample() -> (Vec<u64>, Vec<u64>, MatrixHistogram) {
        let m = FreqMatrix::from_rows(2, 3, vec![90, 5, 6, 4, 5, 70]).unwrap();
        let mh =
            MatrixHistogram::build(&m, |cells| Ok(v_opt_end_biased(cells, 3)?.histogram)).unwrap();
        (vec![10, 20], vec![1, 2, 3], mh)
    }

    #[test]
    fn round_trips_approximations() {
        let (rows, cols, mh) = sample();
        let stored = StoredMatrixHistogram::from_matrix_histogram(&rows, &cols, &mh).unwrap();
        for (k, &rv) in rows.iter().enumerate() {
            for (l, &cv) in cols.iter().enumerate() {
                let expect = mh
                    .inner()
                    .approx_frequency(k * cols.len() + l, RoundingMode::PaperRounded)
                    as u64;
                assert_eq!(stored.approx_frequency(rv, cv), expect, "pair ({rv},{cv})");
            }
        }
        // Unknown pairs fall into the default bucket.
        assert_eq!(
            stored.approx_frequency(99, 99),
            stored.bucket_avgs()[stored.default_bucket() as usize]
        );
    }

    #[test]
    fn end_biased_storage_is_small() {
        let (rows, cols, mh) = sample();
        let stored = StoredMatrixHistogram::from_matrix_histogram(&rows, &cols, &mh).unwrap();
        // 3 buckets: two singletons (90 and 70) + pool → 3 avgs + 2 pairs.
        assert_eq!(stored.storage_entries(), 3 + 2);
    }

    #[test]
    fn dictionary_shape_checked() {
        let (_, cols, mh) = sample();
        assert!(StoredMatrixHistogram::from_matrix_histogram(&[1], &cols, &mh).is_err());
    }

    #[test]
    fn from_parts_validation() {
        assert!(StoredMatrixHistogram::from_parts(vec![], 0, vec![]).is_err());
        assert!(StoredMatrixHistogram::from_parts(vec![1], 1, vec![]).is_err());
        assert!(StoredMatrixHistogram::from_parts(vec![1, 2], 0, vec![(1, 1, 5)]).is_err());
        assert!(
            StoredMatrixHistogram::from_parts(vec![1, 2], 0, vec![(1, 2, 1), (1, 1, 1)]).is_err()
        );
        assert!(
            StoredMatrixHistogram::from_parts(vec![1, 2], 0, vec![(1, 1, 1), (1, 2, 1)]).is_ok()
        );
    }
}
