//! Minimal fork-join parallel map built on crossbeam's scoped threads.
//!
//! Originally an experiments-local helper for the figure sweeps, now
//! shared here so catalog-wide ANALYZE ([`crate::catalog`] consumers
//! such as the engine) can build every column's histogram in parallel.
//! Work is fanned out in contiguous chunks to at most `max_threads`
//! scoped workers while preserving input order, so a parallel ANALYZE
//! stores exactly what the sequential one would. Timing experiments
//! (Table 1, ablations) stay sequential on purpose — wall-clock numbers
//! should not fight for cores.

/// Applies `f` to every item, in parallel, preserving order.
///
/// Spawns at most `max_threads` scoped workers (clamped to the item
/// count). Panics in workers propagate.
pub fn par_map<T, R, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = max_threads.max(1).min(n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        let f = &f;
        for (item_chunk, out_chunk) in items.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (item, slot) in item_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("worker panicked");
    out.into_iter()
        .map(|r| r.expect("every slot was filled by its chunk's worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(items.clone(), 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn preserves_order_at_every_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in 1..=12 {
            assert_eq!(
                par_map(items.clone(), threads, |&x| x * x + 1),
                expected,
                "order broken at {threads} threads"
            );
        }
    }

    #[test]
    fn single_thread_path() {
        let out = par_map(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u64> = par_map(Vec::<u64>::new(), 4, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(vec![7], 16, |&x| x);
        assert_eq!(out, vec![7]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let _ = par_map((0u64..32).collect(), 4, |&x| {
            if x == 17 {
                panic!("boom at {x}");
            }
            x
        });
    }

    #[test]
    #[should_panic]
    fn panic_on_single_thread_path_propagates_too() {
        let _ = par_map(vec![1u64], 1, |_| -> u64 { panic!("boom") });
    }
}
