//! Histogram refresh policies.
//!
//! §2.3 of the paper: "delaying the propagation of database updates to
//! the histogram may introduce additional errors. Appropriate schedules
//! of database update propagation to histograms are an issue that is
//! beyond the scope of this paper." This module supplies the hook such a
//! schedule plugs into — a threshold policy over the catalog's staleness
//! counters, in the style of production ANALYZE daemons (e.g.
//! PostgreSQL's autovacuum thresholds): refresh once
//! `updates > base + fraction × rows`.

use crate::catalog::{Catalog, RefreshStage, StatKey};
use crate::error::Result;
use crate::relation::Relation;
use vopt_hist::BuilderSpec;

/// When to re-ANALYZE a column's statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshPolicy {
    /// Absolute update count below which statistics are never refreshed
    /// (avoids thrashing on small relations).
    pub base_threshold: u64,
    /// Refresh once updates exceed `base_threshold + fraction × rows`.
    pub staleness_fraction: f64,
}

impl Default for RefreshPolicy {
    /// PostgreSQL-like defaults: 50 updates + 10% of the relation.
    fn default() -> Self {
        Self {
            base_threshold: 50,
            staleness_fraction: 0.10,
        }
    }
}

impl RefreshPolicy {
    /// Whether statistics with `staleness` updates over a relation of
    /// `rows` tuples should be rebuilt.
    ///
    /// The threshold is inclusive: `staleness == base + fraction × rows`
    /// is due, so a policy of "refresh every N updates" fires at exactly
    /// N rather than N+1. Zero staleness is never due (there is nothing
    /// to propagate), and a non-finite threshold (e.g. an infinite
    /// fraction multiplied by zero rows yields NaN, which every float
    /// comparison answers `false` for — silently disabling refresh)
    /// falls back to the base threshold alone.
    pub fn due(&self, staleness: u64, rows: usize) -> bool {
        if staleness == 0 {
            return false;
        }
        let threshold = self.base_threshold as f64 + self.staleness_fraction * rows as f64;
        if !threshold.is_finite() {
            return staleness >= self.base_threshold;
        }
        staleness as f64 >= threshold
    }
}

/// Outcome of a maintenance pass over one catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceOutcome {
    /// Statistics were fresh enough; nothing done.
    Fresh,
    /// Statistics were rebuilt (scan + construct + store).
    Refreshed,
}

/// Checks one single-column entry against the policy and re-ANALYZEs it
/// when due (through [`Catalog::analyze`], the same scan → build →
/// store pipeline the original ANALYZE used). Returns what happened.
///
/// `spec` describes the histogram to build when the column has never
/// been analyzed. A refresh of an existing entry reuses the spec the
/// catalog recorded at build time, so maintenance never silently
/// changes a histogram's class; entries without a recorded spec (raw
/// `put`s) fall back to `spec`.
pub fn maintain_column(
    catalog: &Catalog,
    relation: &Relation,
    column: &str,
    spec: BuilderSpec,
    policy: &RefreshPolicy,
) -> Result<MaintenanceOutcome> {
    maintain_column_with_hook(catalog, relation, column, spec, policy, &mut |_| Ok(()))
}

/// [`maintain_column`] with a [`RefreshStage`] hook threaded through to
/// [`Catalog::analyze_with_hook`] whenever a refresh actually runs. An
/// `Err` from the hook aborts that refresh; the previous entry (and its
/// staleness counter) stay exactly as they were, so the column simply
/// comes up due again on the next maintenance pass. Fault-injection
/// harnesses use this to prove interrupted maintenance degrades loudly.
pub fn maintain_column_with_hook(
    catalog: &Catalog,
    relation: &Relation,
    column: &str,
    spec: BuilderSpec,
    policy: &RefreshPolicy,
    hook: &mut dyn FnMut(RefreshStage) -> Result<()>,
) -> Result<MaintenanceOutcome> {
    // A zero-row relation has no frequency distribution to summarise;
    // ANALYZE over it is a guaranteed EmptyInput error, so the daemon
    // skips it (as autovacuum does) instead of failing every pass.
    if relation.num_rows() == 0 {
        return Ok(MaintenanceOutcome::Fresh);
    }
    let key = StatKey::new(relation.name(), &[column]);
    let staleness = match catalog.staleness(&key) {
        Ok(s) => s,
        // Never analyzed: build the first histogram now.
        Err(_) => {
            if let Err(e) = catalog.analyze_with_hook(relation, column, spec, hook) {
                catalog.note_refresh_failure(&key, &e.to_string());
                return Err(e);
            }
            return Ok(MaintenanceOutcome::Refreshed);
        }
    };
    if policy.due(staleness, relation.num_rows()) {
        let refresh_spec = catalog.spec_of(&key).unwrap_or(spec);
        if let Err(e) = catalog.analyze_with_hook(relation, column, refresh_spec, hook) {
            catalog.note_refresh_failure(&key, &e.to_string());
            return Err(e);
        }
        Ok(MaintenanceOutcome::Refreshed)
    } else {
        Ok(MaintenanceOutcome::Fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::relation_from_frequency_set;
    use freqdist::FrequencySet;

    const SPEC: BuilderSpec = BuilderSpec::VOptEndBiased(3);

    fn relation() -> Relation {
        let freqs = FrequencySet::new(vec![50, 30, 10, 5, 5]);
        relation_from_frequency_set("t", "c", &freqs, 3).unwrap()
    }

    #[test]
    fn policy_thresholds() {
        let p = RefreshPolicy::default();
        // 100-row relation: threshold = 50 + 10 = 60, inclusive.
        assert!(!p.due(0, 100));
        assert!(!p.due(59, 100));
        assert!(p.due(60, 100));
        assert!(p.due(61, 100));
        let strict = RefreshPolicy {
            base_threshold: 0,
            staleness_fraction: 0.0,
        };
        assert!(strict.due(1, 1_000_000));
        assert!(!strict.due(0, 1_000_000));
    }

    #[test]
    fn policy_zero_rows_uses_base_threshold_only() {
        let p = RefreshPolicy::default();
        // threshold = 50 + 0.10 × 0 = 50: the base alone governs.
        assert!(!p.due(0, 0));
        assert!(!p.due(49, 0));
        assert!(p.due(50, 0));
    }

    #[test]
    fn policy_non_finite_threshold_falls_back_to_base() {
        // ∞ × 0 rows is NaN; every NaN comparison is false, which would
        // silently disable refresh forever without the fallback.
        let p = RefreshPolicy {
            base_threshold: 10,
            staleness_fraction: f64::INFINITY,
        };
        assert!(!p.due(9, 0));
        assert!(p.due(10, 0));
        // With rows > 0 the threshold is +∞: only the fallback fires.
        assert!(p.due(10, 5));
        let nan = RefreshPolicy {
            base_threshold: 10,
            staleness_fraction: f64::NAN,
        };
        assert!(nan.due(10, 100));
        assert!(!nan.due(9, 100));
    }

    #[test]
    fn zero_row_relation_is_skipped_not_an_error() {
        let cat = Catalog::new();
        let empty = Relation::empty("z", crate::schema::Schema::new(["c"]).unwrap());
        let out = maintain_column(&cat, &empty, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Fresh);
        assert!(cat.get(&StatKey::new("z", &["c"])).is_err());
    }

    #[test]
    fn staleness_at_exact_threshold_refreshes() {
        let cat = Catalog::new();
        let rel = relation();
        let key = StatKey::new("t", &["c"]);
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        // 100 rows → threshold exactly 60; the boundary must refresh.
        cat.note_updates("t", 60);
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Refreshed);
        assert_eq!(cat.staleness(&key).unwrap(), 0);
    }

    #[test]
    fn aborted_refresh_keeps_previous_entry_and_staleness() {
        let cat = Catalog::new();
        let rel = relation();
        let key = StatKey::new("t", &["c"]);
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        let before = cat.get(&key).unwrap();
        cat.note_updates("t", 61);
        let err = maintain_column_with_hook(
            &cat,
            &rel,
            "c",
            SPEC,
            &RefreshPolicy::default(),
            &mut |stage| {
                if stage == RefreshStage::BeforeStore {
                    Err(crate::error::StoreError::Codec("injected abort".into()))
                } else {
                    Ok(())
                }
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("injected abort"));
        // The old histogram is still served and the column is still due.
        assert_eq!(cat.get(&key).unwrap(), before);
        assert_eq!(cat.staleness(&key).unwrap(), 61);
        // The failure left a streak the breaker and metrics can read.
        let record = cat.refresh_failure(&key).unwrap();
        assert_eq!(record.count, 1);
        assert!(record.last_error.contains("injected abort"));
        // A later successful refresh clears it.
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert!(cat.refresh_failure(&key).is_none());
    }

    #[test]
    fn first_maintenance_analyzes() {
        let cat = Catalog::new();
        let rel = relation();
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Refreshed);
        assert!(cat.get(&StatKey::new("t", &["c"])).is_ok());
    }

    #[test]
    fn fresh_statistics_are_left_alone() {
        let cat = Catalog::new();
        let rel = relation();
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Fresh);
    }

    #[test]
    fn stale_statistics_are_refreshed_and_staleness_resets() {
        let cat = Catalog::new();
        let rel = relation();
        let key = StatKey::new("t", &["c"]);
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        // 100 rows → threshold 50 + 10 = 60.
        cat.note_updates("t", 61);
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Refreshed);
        assert_eq!(cat.staleness(&key).unwrap(), 0);
    }

    #[test]
    fn refresh_reuses_recorded_spec() {
        let cat = Catalog::new();
        let rel = relation();
        let key = StatKey::new("t", &["c"]);
        let original = BuilderSpec::MaxDiff(2);
        maintain_column(&cat, &rel, "c", original, &RefreshPolicy::default()).unwrap();
        assert_eq!(cat.spec_of(&key), Some(original));
        cat.note_updates("t", 61);
        // The different spec passed at refresh time is only a fallback;
        // the entry keeps the class it was originally built with.
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Refreshed);
        assert_eq!(cat.spec_of(&key), Some(original));
    }

    #[test]
    fn below_threshold_updates_do_not_refresh() {
        let cat = Catalog::new();
        let rel = relation();
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        cat.note_updates("t", 30);
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Fresh);
        assert_eq!(cat.staleness(&StatKey::new("t", &["c"])).unwrap(), 30);
    }
}
