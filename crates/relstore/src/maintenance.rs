//! Histogram refresh policies.
//!
//! §2.3 of the paper: "delaying the propagation of database updates to
//! the histogram may introduce additional errors. Appropriate schedules
//! of database update propagation to histograms are an issue that is
//! beyond the scope of this paper." This module supplies the hook such a
//! schedule plugs into — a threshold policy over the catalog's staleness
//! counters, in the style of production ANALYZE daemons (e.g.
//! PostgreSQL's autovacuum thresholds): refresh once
//! `updates > base + fraction × rows`.

use crate::catalog::{Catalog, StatKey};
use crate::error::Result;
use crate::relation::Relation;
use vopt_hist::BuilderSpec;

/// When to re-ANALYZE a column's statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshPolicy {
    /// Absolute update count below which statistics are never refreshed
    /// (avoids thrashing on small relations).
    pub base_threshold: u64,
    /// Refresh once updates exceed `base_threshold + fraction × rows`.
    pub staleness_fraction: f64,
}

impl Default for RefreshPolicy {
    /// PostgreSQL-like defaults: 50 updates + 10% of the relation.
    fn default() -> Self {
        Self {
            base_threshold: 50,
            staleness_fraction: 0.10,
        }
    }
}

impl RefreshPolicy {
    /// Whether statistics with `staleness` updates over a relation of
    /// `rows` tuples should be rebuilt.
    pub fn due(&self, staleness: u64, rows: usize) -> bool {
        let threshold = self.base_threshold as f64 + self.staleness_fraction * rows as f64;
        (staleness as f64) > threshold
    }
}

/// Outcome of a maintenance pass over one catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceOutcome {
    /// Statistics were fresh enough; nothing done.
    Fresh,
    /// Statistics were rebuilt (scan + construct + store).
    Refreshed,
}

/// Checks one single-column entry against the policy and re-ANALYZEs it
/// when due (through [`Catalog::analyze`], the same scan → build →
/// store pipeline the original ANALYZE used). Returns what happened.
///
/// `spec` describes the histogram to build when the column has never
/// been analyzed. A refresh of an existing entry reuses the spec the
/// catalog recorded at build time, so maintenance never silently
/// changes a histogram's class; entries without a recorded spec (raw
/// `put`s) fall back to `spec`.
pub fn maintain_column(
    catalog: &Catalog,
    relation: &Relation,
    column: &str,
    spec: BuilderSpec,
    policy: &RefreshPolicy,
) -> Result<MaintenanceOutcome> {
    let key = StatKey::new(relation.name(), &[column]);
    let staleness = match catalog.staleness(&key) {
        Ok(s) => s,
        // Never analyzed: build the first histogram now.
        Err(_) => {
            catalog.analyze(relation, column, spec)?;
            return Ok(MaintenanceOutcome::Refreshed);
        }
    };
    if policy.due(staleness, relation.num_rows()) {
        let refresh_spec = catalog.spec_of(&key).unwrap_or(spec);
        catalog.analyze(relation, column, refresh_spec)?;
        Ok(MaintenanceOutcome::Refreshed)
    } else {
        Ok(MaintenanceOutcome::Fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::relation_from_frequency_set;
    use freqdist::FrequencySet;

    const SPEC: BuilderSpec = BuilderSpec::VOptEndBiased(3);

    fn relation() -> Relation {
        let freqs = FrequencySet::new(vec![50, 30, 10, 5, 5]);
        relation_from_frequency_set("t", "c", &freqs, 3).unwrap()
    }

    #[test]
    fn policy_thresholds() {
        let p = RefreshPolicy::default();
        // 100-row relation: threshold = 50 + 10 = 60.
        assert!(!p.due(0, 100));
        assert!(!p.due(60, 100));
        assert!(p.due(61, 100));
        let strict = RefreshPolicy {
            base_threshold: 0,
            staleness_fraction: 0.0,
        };
        assert!(strict.due(1, 1_000_000));
        assert!(!strict.due(0, 1_000_000));
    }

    #[test]
    fn first_maintenance_analyzes() {
        let cat = Catalog::new();
        let rel = relation();
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Refreshed);
        assert!(cat.get(&StatKey::new("t", &["c"])).is_ok());
    }

    #[test]
    fn fresh_statistics_are_left_alone() {
        let cat = Catalog::new();
        let rel = relation();
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Fresh);
    }

    #[test]
    fn stale_statistics_are_refreshed_and_staleness_resets() {
        let cat = Catalog::new();
        let rel = relation();
        let key = StatKey::new("t", &["c"]);
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        // 100 rows → threshold 50 + 10 = 60.
        cat.note_updates("t", 61);
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Refreshed);
        assert_eq!(cat.staleness(&key).unwrap(), 0);
    }

    #[test]
    fn refresh_reuses_recorded_spec() {
        let cat = Catalog::new();
        let rel = relation();
        let key = StatKey::new("t", &["c"]);
        let original = BuilderSpec::MaxDiff(2);
        maintain_column(&cat, &rel, "c", original, &RefreshPolicy::default()).unwrap();
        assert_eq!(cat.spec_of(&key), Some(original));
        cat.note_updates("t", 61);
        // The different spec passed at refresh time is only a fallback;
        // the entry keeps the class it was originally built with.
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Refreshed);
        assert_eq!(cat.spec_of(&key), Some(original));
    }

    #[test]
    fn below_threshold_updates_do_not_refresh() {
        let cat = Catalog::new();
        let rel = relation();
        maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        cat.note_updates("t", 30);
        let out = maintain_column(&cat, &rel, "c", SPEC, &RefreshPolicy::default()).unwrap();
        assert_eq!(out, MaintenanceOutcome::Fresh);
        assert_eq!(cat.staleness(&StatKey::new("t", &["c"])).unwrap(), 30);
    }
}
