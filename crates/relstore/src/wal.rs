//! Crash-safe persistence for the statistics catalog.
//!
//! The paper treats histograms as long-lived catalog state ("stored in
//! catalog tables", §4) — and production catalogs must survive the
//! process dying mid-write. This module provides write-ahead durability
//! for [`Catalog`] mutations:
//!
//! * **Journal** — every durable mutation (`put`, `put_matrix`,
//!   `note_updates`) is first appended to a generation-numbered journal
//!   file as a length-prefixed, FxHash-64-checksummed record, fsynced,
//!   and only then applied in memory. Append and apply happen under one
//!   journal lock — the same lock [`DurableCatalog::checkpoint`] holds
//!   while encoding its snapshot — so a snapshot can never miss a
//!   record committed to the journal it supersedes, and records are
//!   applied in exactly the order they are journaled. A crash
//!   mid-append leaves a torn tail that recovery detects (checksum or
//!   length mismatch) and truncates — every fully-synced record
//!   survives, every torn one is discarded whole.
//! * **Snapshot rotation** — [`DurableCatalog::checkpoint`] compacts
//!   the journal into a full `VOHG` snapshot: write
//!   `catalog.<gen+1>.vohg.tmp`, fsync, rename into place (atomic on
//!   POSIX), fsync the directory, then start a fresh journal for the
//!   new generation. The previous generation's snapshot *and* journal
//!   are kept, so a snapshot corrupted after the fact still recovers
//!   from the prior generation; older generations are garbage-collected.
//! * **Recovery** — [`Catalog::recover`] loads the newest snapshot that
//!   passes its checksum and replays that generation's journal tail in
//!   append order, so entries are re-stamped against the replayed
//!   version counters exactly as they were stamped originally.
//!
//! Staleness semantics across recovery: the `VOHG` snapshot format
//! deliberately persists no version counters (reloaded statistics start
//! fresh, as after an ANALYZE), so recovered staleness counts updates
//! *since the last checkpoint* — the journal's `note_updates` records
//! restore exactly that window. Refresh-failure streaks are in-memory
//! diagnostics and are not journaled.
//!
//! Fault injection: [`DurableCatalog::arm_kill`] plants a one-shot
//! [`KillPoint`] that makes the next matching operation fail exactly as
//! a crash at that instant would (torn append, skipped fsync, missing
//! rename). The oracle drives every kill point and checks that recovery
//! lands on a committed state — see `oracle::faults`.
//!
//! Orthogonally, [`DurableCatalog::arm_io_fault`] plants a one-shot
//! *error-return* fault ([`IoFault::Enospc`] or [`IoFault::Eio`]) at
//! one of the durable-write sites (journal append, journal fsync,
//! snapshot rotate). Unlike a kill point — which models the process
//! dying — an I/O fault models the *disk* failing under a live
//! process: the write returns an error, nothing is committed, and the
//! store flips into a **read-only degraded mode**. Reads keep serving
//! the last committed state, writes return [`StoreError::ReadOnly`],
//! the `catalog_readonly` gauge goes to 1 and a trace event is
//! emitted. A successful [`DurableCatalog::checkpoint`] — the
//! maintenance daemon probes one per sweep via
//! [`DurableCatalog::probe_restore`] — proves durable writes work
//! again and restores read-write.

use crate::catalog::{Catalog, StatKey, StoredHistogram, TuneReport};
use crate::catalog2d::StoredMatrixHistogram;
use crate::codec;
use crate::error::{Result, StoreError};
use crate::maintenance::{MaintenanceOutcome, RefreshPolicy};
use crate::relation::Relation;
use crate::stats::{frequency_matrix_table, frequency_table};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use parking_lot::Mutex;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vopt_hist::feedback::{TuneConfig, TuneSkip};
use vopt_hist::{BuilderSpec, MatrixHistogram};

/// A crash site that [`DurableCatalog::arm_kill`] can plant a one-shot
/// fault at. Each variant makes the next matching operation leave the
/// on-disk state exactly as a process crash at that instant would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die mid-`write(2)` of a journal record: a torn prefix of the
    /// frame reaches the disk.
    JournalAppend,
    /// Die after the record's `write(2)` but before `fsync`: the full
    /// frame is in the OS cache (and, in this simulation, on disk).
    JournalFsync,
    /// Die after writing and fsyncing the snapshot temp file but before
    /// the atomic rename: the temp file lingers, the previous
    /// generation stays current.
    SnapshotRotate,
    /// Die at the start of a maintenance refresh, before the scan:
    /// nothing is journaled, the previous entry keeps serving.
    DaemonRefresh,
}

impl KillPoint {
    /// Stable lowercase name, used in error messages and oracle output.
    pub fn name(self) -> &'static str {
        match self {
            KillPoint::JournalAppend => "journal_append",
            KillPoint::JournalFsync => "journal_fsync",
            KillPoint::SnapshotRotate => "snapshot_rotate",
            KillPoint::DaemonRefresh => "daemon_refresh",
        }
    }

    /// Every kill point, in the order the oracle's matrix drives them.
    pub const ALL: [KillPoint; 4] = [
        KillPoint::JournalAppend,
        KillPoint::JournalFsync,
        KillPoint::SnapshotRotate,
        KillPoint::DaemonRefresh,
    ];
}

/// An error-return disk fault [`DurableCatalog::arm_io_fault`] can
/// plant at a durable-write site. Where a [`KillPoint`] simulates the
/// *process* dying, an `IoFault` simulates the *disk* failing under a
/// live process: the operation returns the corresponding `errno`-style
/// error and the store enters read-only degraded mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// `ENOSPC`: no space left on device.
    Enospc,
    /// `EIO`: a low-level device I/O error.
    Eio,
}

impl IoFault {
    /// Stable lowercase name, used in error messages and oracle output.
    pub fn name(self) -> &'static str {
        match self {
            IoFault::Enospc => "enospc",
            IoFault::Eio => "eio",
        }
    }

    /// The `std::io::Error` this fault surfaces as.
    fn to_io_error(self) -> std::io::Error {
        // Raw errnos (Linux/POSIX): ENOSPC = 28, EIO = 5. Using the OS
        // mapping keeps the message ("No space left on device") what a
        // real failure would produce.
        std::io::Error::from_raw_os_error(match self {
            IoFault::Enospc => 28,
            IoFault::Eio => 5,
        })
    }

    /// Both faults, in the order the oracle's grid drives them.
    pub const ALL: [IoFault; 2] = [IoFault::Enospc, IoFault::Eio];
}

const TAG_PUT: u8 = 1;
const TAG_PUT_MATRIX: u8 = 2;
const TAG_NOTE_UPDATES: u8 = 3;
/// A feedback tune step: the key plus the full tuned histogram. The
/// record carries the *result*, not the (estimate, actual) observation,
/// so replay is a deterministic `apply_tune` that cannot re-derive a
/// different histogram from drifted quality state.
const TAG_TUNE: u8 = 4;

fn io_err(what: &str, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{what}: {e}"))
}

fn snapshot_name(generation: u64) -> String {
    format!("catalog.{generation:016}.vohg")
}

fn journal_name(generation: u64) -> String {
    format!("journal.{generation:016}.wal")
}

/// The generation numbers of all snapshot files in `dir`, newest first.
/// Temp files (`.tmp` suffix) are crash leftovers and are ignored.
fn snapshot_generations(dir: &Path) -> Result<Vec<u64>> {
    let mut generations = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(generations),
        Err(e) => return Err(io_err("read data dir", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read data dir entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(gen_str) = name
            .strip_prefix("catalog.")
            .and_then(|rest| rest.strip_suffix(".vohg"))
        {
            if let Ok(generation) = gen_str.parse::<u64>() {
                generations.push(generation);
            }
        }
    }
    generations.sort_unstable_by(|a, b| b.cmp(a));
    Ok(generations)
}

/// Frames a record payload for the journal:
/// `u32 length | payload | u64 FxHash-64(payload)`, all little-endian.
/// A payload over `u32::MAX` bytes cannot be framed — a wrapped length
/// prefix would scan as torn or mis-framed and silently truncate
/// recovery at this record — so oversized payloads are a typed error.
fn frame(payload: &[u8]) -> Result<Vec<u8>> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        StoreError::Codec(format!(
            "journal record of {} bytes exceeds the u32 framing limit",
            payload.len()
        ))
    })?;
    let mut framed = Vec::with_capacity(4 + payload.len() + 8);
    framed.extend_from_slice(&len.to_le_bytes());
    framed.extend_from_slice(payload);
    framed.extend_from_slice(&codec::catalog_checksum(payload).to_le_bytes());
    Ok(framed)
}

/// Walks the journal's frames from the start, stopping at the first
/// torn record (short length prefix, short payload, or checksum
/// mismatch). Returns the byte length of the valid prefix and the
/// record payloads inside it.
fn scan_journal(bytes: &[u8]) -> (usize, Vec<Bytes>) {
    let mut offset = 0usize;
    let mut records = Vec::new();
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if rest.len() < 4 + len + 8 {
            break;
        }
        let payload = &rest[4..4 + len];
        let recorded = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().unwrap());
        if codec::catalog_checksum(payload) != recorded {
            break;
        }
        records.push(Bytes::copy_from_slice(payload));
        offset += 4 + len + 8;
    }
    (offset, records)
}

/// Length-prefixes `blob` into `buf`, rejecting blobs whose length
/// would wrap the `u32` prefix (see [`frame`]).
fn put_checked_blob(buf: &mut BytesMut, blob: &[u8]) -> Result<()> {
    let len = u32::try_from(blob.len()).map_err(|_| {
        StoreError::Codec(format!(
            "histogram blob of {} bytes exceeds the u32 length-prefix limit",
            blob.len()
        ))
    })?;
    buf.put_u32_le(len);
    buf.put_slice(blob);
    Ok(())
}

fn encode_put(key: &StatKey, hist: &StoredHistogram, spec: Option<BuilderSpec>) -> Result<Vec<u8>> {
    let mut buf = BytesMut::new();
    buf.put_u8(TAG_PUT);
    codec::put_key(&mut buf, key);
    codec::put_spec(&mut buf, spec);
    put_checked_blob(&mut buf, &codec::encode_histogram(hist))?;
    Ok(buf.to_vec())
}

fn encode_put_matrix(
    key: &StatKey,
    hist: &StoredMatrixHistogram,
    spec: Option<BuilderSpec>,
) -> Result<Vec<u8>> {
    let mut buf = BytesMut::new();
    buf.put_u8(TAG_PUT_MATRIX);
    codec::put_key(&mut buf, key);
    codec::put_spec(&mut buf, spec);
    put_checked_blob(&mut buf, &codec::encode_matrix_histogram(hist))?;
    Ok(buf.to_vec())
}

fn encode_tune(key: &StatKey, hist: &StoredHistogram) -> Result<Vec<u8>> {
    let mut buf = BytesMut::new();
    buf.put_u8(TAG_TUNE);
    codec::put_key(&mut buf, key);
    put_checked_blob(&mut buf, &codec::encode_histogram(hist))?;
    Ok(buf.to_vec())
}

fn encode_note_updates(relation: &str, updates: u64) -> Vec<u8> {
    let mut buf = BytesMut::new();
    buf.put_u8(TAG_NOTE_UPDATES);
    codec::put_str(&mut buf, relation);
    buf.put_u64_le(updates);
    buf.to_vec()
}

/// Applies one checksum-verified journal record to `catalog`. A record
/// that passed its checksum but does not parse is not a torn write (a
/// crash cannot forge a valid hash) — it is corruption or a format bug,
/// surfaced as a typed error rather than silently skipped.
fn apply_record(catalog: &Catalog, mut payload: Bytes) -> Result<()> {
    codec::need(&payload, 1, "journal record tag")?;
    match payload.get_u8() {
        TAG_PUT => {
            let key = codec::get_key(&mut payload)?;
            let spec = codec::get_spec(&mut payload)?;
            let hist = codec::decode_histogram(codec::get_blob(&mut payload)?)?;
            if payload.has_remaining() {
                return Err(StoreError::Codec(format!(
                    "{} trailing byte(s) in journal put record",
                    payload.remaining()
                )));
            }
            catalog.put_with_spec(key, hist, spec);
        }
        TAG_PUT_MATRIX => {
            let key = codec::get_key(&mut payload)?;
            let spec = codec::get_spec(&mut payload)?;
            let hist = codec::decode_matrix_histogram(codec::get_blob(&mut payload)?)?;
            if payload.has_remaining() {
                return Err(StoreError::Codec(format!(
                    "{} trailing byte(s) in journal put_matrix record",
                    payload.remaining()
                )));
            }
            catalog.put_matrix_with_spec(key, hist, spec);
        }
        TAG_NOTE_UPDATES => {
            let relation = codec::get_str(&mut payload)?;
            codec::need(&payload, 8, "journal note_updates count")?;
            let updates = payload.get_u64_le();
            if payload.has_remaining() {
                return Err(StoreError::Codec(format!(
                    "{} trailing byte(s) in journal note_updates record",
                    payload.remaining()
                )));
            }
            catalog.note_updates(&relation, updates);
        }
        TAG_TUNE => {
            let key = codec::get_key(&mut payload)?;
            let hist = codec::decode_histogram(codec::get_blob(&mut payload)?)?;
            if payload.has_remaining() {
                return Err(StoreError::Codec(format!(
                    "{} trailing byte(s) in journal tune record",
                    payload.remaining()
                )));
            }
            // A tune record always follows the put that created its
            // entry (in the snapshot or earlier in this journal), so a
            // missing entry here is corruption, surfaced as the typed
            // error `apply_tune` returns.
            catalog.apply_tune(&key, hist)?;
        }
        other => {
            return Err(StoreError::Codec(format!(
                "unknown journal record tag {other}"
            )))
        }
    }
    Ok(())
}

/// Loads the newest snapshot in `dir` that passes its `VOHG` checksum,
/// falling back to older generations when a newer one is corrupt.
/// Returns the catalog and the generation it came from (generation 0
/// and an empty catalog when the directory holds no snapshots at all —
/// first boot). When snapshots exist but none decodes, that is total
/// corruption and a typed error.
fn load_newest_snapshot(dir: &Path) -> Result<(Catalog, u64)> {
    let generations = snapshot_generations(dir)?;
    if generations.is_empty() {
        return Ok((Catalog::new(), 0));
    }
    let mut last_err = None;
    for (i, &generation) in generations.iter().enumerate() {
        let path = dir.join(snapshot_name(generation));
        let loaded = fs::read(&path)
            .map_err(|e| io_err("read snapshot", e))
            .and_then(|bytes| codec::decode_catalog(Bytes::from(bytes)));
        match loaded {
            Ok(catalog) => {
                if i > 0 {
                    obs::counter("wal_snapshot_fallback_total").inc();
                }
                return Ok((catalog, generation));
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(StoreError::Codec(format!(
        "no snapshot generation in {} decodes; newest error: {}",
        dir.display(),
        last_err.expect("generations is non-empty")
    )))
}

/// Recovers catalog state from `dir` without modifying any file: newest
/// valid snapshot plus the valid prefix of that generation's journal.
/// The torn tail (if any) is ignored here; [`DurableCatalog::open`]
/// physically truncates it before resuming appends.
pub fn recover(dir: &Path) -> Result<Catalog> {
    let _span = obs::span("wal_recover");
    obs::counter("wal_recover_total").inc();
    let (catalog, generation) = load_newest_snapshot(dir)?;
    let journal_path = dir.join(journal_name(generation));
    match fs::read(&journal_path) {
        Ok(bytes) => {
            let (valid_len, records) = scan_journal(&bytes);
            if valid_len < bytes.len() {
                obs::counter("wal_torn_tail_total").inc();
            }
            for record in records {
                apply_record(&catalog, record)?;
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err("read journal", e)),
    }
    Ok(catalog)
}

impl Catalog {
    /// Recovers the catalog persisted in `dir` by [`DurableCatalog`]:
    /// the newest checksum-valid snapshot plus the replayed journal
    /// tail, truncated (logically) at the first torn record. Read-only;
    /// safe to run on a live data directory.
    pub fn recover(dir: &Path) -> Result<Catalog> {
        recover(dir)
    }
}

struct JournalWriter {
    file: File,
    /// Committed (fully framed and synced) journal bytes. The physical
    /// file can be longer after a torn append; `dirty` flags that.
    bytes: u64,
    generation: u64,
    dirty: bool,
}

impl JournalWriter {
    /// Re-aligns the physical file with the committed byte count after
    /// a torn append, so the next record isn't written after garbage.
    fn heal(&mut self) -> Result<()> {
        if self.dirty {
            self.file
                .set_len(self.bytes)
                .map_err(|e| io_err("truncate torn journal", e))?;
            self.dirty = false;
        }
        Ok(())
    }
}

/// A [`Catalog`] whose mutations are write-ahead journaled to a data
/// directory, with checkpoint compaction and crash recovery.
///
/// Durable mutations go through the methods here (`put_with_spec`,
/// `note_updates`, `analyze`, …): journal append + fsync first, then
/// the in-memory apply, both under the journal lock, so a crash never
/// loses an acknowledged write — and a concurrent [`checkpoint`] never
/// snapshots a state missing a record committed to the journal it
/// retires.
/// [`DurableCatalog::catalog`] exposes the in-memory catalog for
/// *reads*; mutating through it directly would bypass the journal and
/// silently vanish on recovery — `scripts/ci.sh` greps that no code
/// outside this module opens the journal file, and callers are expected
/// to treat the reference as read-only.
///
/// After any append error (including an armed [`KillPoint`] firing) the
/// store should be treated as crashed: drop it and re-[`open`] the
/// directory, exactly as a restarted process would.
///
/// [`open`]: DurableCatalog::open
/// [`checkpoint`]: DurableCatalog::checkpoint
pub struct DurableCatalog {
    dir: PathBuf,
    catalog: Arc<Catalog>,
    journal: Mutex<JournalWriter>,
    kill: Mutex<Option<KillPoint>>,
    /// One-shot error-return fault: fires when the named durable-write
    /// site is next reached (only the journal-append, journal-fsync,
    /// and snapshot-rotate sites check it).
    io_fault: Mutex<Option<(KillPoint, IoFault)>>,
    /// Read-only degraded mode, entered on any durable-write failure
    /// and exited by the next successful checkpoint (the probe).
    readonly: AtomicBool,
}

impl DurableCatalog {
    /// Opens (or initialises) the data directory: recovers the newest
    /// committed state, physically truncates any torn journal tail, and
    /// resumes appending to the current generation's journal.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create data dir", e))?;
        let (catalog, generation) = load_newest_snapshot(&dir)?;
        let journal_path = dir.join(journal_name(generation));
        let mut committed = 0u64;
        match fs::read(&journal_path) {
            Ok(bytes) => {
                let (valid_len, records) = scan_journal(&bytes);
                for record in records {
                    apply_record(&catalog, record)?;
                }
                if valid_len < bytes.len() {
                    obs::counter("wal_torn_tail_total").inc();
                    // Physical truncation: the torn tail must not sit
                    // between committed records and future appends.
                    let f = OpenOptions::new()
                        .write(true)
                        .open(&journal_path)
                        .map_err(|e| io_err("open journal for truncation", e))?;
                    f.set_len(valid_len as u64)
                        .map_err(|e| io_err("truncate torn journal", e))?;
                    f.sync_all()
                        .map_err(|e| io_err("fsync truncated journal", e))?;
                }
                committed = valid_len as u64;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("read journal", e)),
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| io_err("open journal", e))?;
        obs::gauge("wal_journal_bytes").set(committed as f64);
        Ok(Self {
            dir,
            catalog: Arc::new(catalog),
            journal: Mutex::new(JournalWriter {
                file,
                bytes: committed,
                generation,
                dirty: false,
            }),
            kill: Mutex::new(None),
            io_fault: Mutex::new(None),
            readonly: AtomicBool::new(false),
        })
    }

    /// Read access to the recovered in-memory catalog. Treat as
    /// read-only: mutations through this reference are not journaled.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// A shared handle to the in-memory catalog, for read paths (the
    /// engine's snapshot/estimation-cache machinery) that outlive a
    /// borrow. The same read-only contract as
    /// [`DurableCatalog::catalog`] applies: mutations through this
    /// handle bypass the journal and vanish on recovery.
    pub fn catalog_arc(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog)
    }

    /// The data directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Committed journal bytes of the current generation (the
    /// checkpoint-compaction trigger and the `wal_journal_bytes` gauge).
    pub fn journal_bytes(&self) -> u64 {
        self.journal.lock().bytes
    }

    /// The current snapshot generation number.
    pub fn generation(&self) -> u64 {
        self.journal.lock().generation
    }

    /// Plants a one-shot fault: the next operation that reaches `point`
    /// fails exactly as a crash there would. Used by the oracle's
    /// crash-recovery matrix.
    pub fn arm_kill(&self, point: KillPoint) {
        *self.kill.lock() = Some(point);
    }

    fn take_kill(&self, point: KillPoint) -> bool {
        let mut kill = self.kill.lock();
        if *kill == Some(point) {
            *kill = None;
            true
        } else {
            false
        }
    }

    /// Plants a one-shot error-return fault: the next durable write
    /// that reaches `site` fails with `fault`'s errno and the store
    /// enters read-only degraded mode. Sites checked:
    /// [`KillPoint::JournalAppend`], [`KillPoint::JournalFsync`], and
    /// [`KillPoint::SnapshotRotate`]. Used by the oracle's I/O-fault
    /// grid.
    pub fn arm_io_fault(&self, site: KillPoint, fault: IoFault) {
        *self.io_fault.lock() = Some((site, fault));
    }

    fn take_io_fault(&self, site: KillPoint) -> Option<IoFault> {
        let mut armed = self.io_fault.lock();
        match *armed {
            Some((s, fault)) if s == site => {
                *armed = None;
                Some(fault)
            }
            _ => None,
        }
    }

    /// Whether the store is in read-only degraded mode (reads keep
    /// serving the last committed state; writes return
    /// [`StoreError::ReadOnly`]).
    pub fn readonly(&self) -> bool {
        self.readonly.load(Ordering::SeqCst)
    }

    /// Flips into read-only degraded mode (idempotent): gauge to 1,
    /// one trace event per transition.
    fn enter_readonly(&self, reason: &str) {
        if !self.readonly.swap(true, Ordering::SeqCst) {
            obs::gauge("catalog_readonly").set(1.0);
            obs::trace::catalog_readonly(true, reason);
        }
    }

    /// The degraded-mode exit probe: when read-only, attempts a full
    /// [`DurableCatalog::checkpoint`] — a real durable write covering
    /// every site that can have failed — and read-write resumes iff it
    /// succeeds. Returns whether the store is writable afterwards. The
    /// maintenance daemon calls this once per sweep.
    pub fn probe_restore(&self) -> bool {
        if !self.readonly.load(Ordering::SeqCst) {
            return true;
        }
        self.checkpoint().is_ok() && !self.readonly.load(Ordering::SeqCst)
    }

    /// The typed error an injected `fault` at `site` surfaces as. The
    /// message carries both names so tests and operators can tell an
    /// injected ENOSPC from a real one.
    fn injected_io_error(site: KillPoint, fault: IoFault) -> StoreError {
        StoreError::Io(format!(
            "injected {} at {}: {}",
            fault.name(),
            site.name(),
            fault.to_io_error()
        ))
    }

    /// Appends one framed record and, still holding the journal lock,
    /// applies the matching in-memory mutation via `apply`. Holding the
    /// lock across both steps makes the pair atomic with respect to
    /// [`DurableCatalog::checkpoint`] (which encodes its snapshot under
    /// the same lock): a checkpoint can never capture a catalog missing
    /// a record already committed to the journal it is about to retire,
    /// and concurrent writers apply in exactly journal order. Honours
    /// armed kill points; on any error — a kill point firing counts —
    /// the mutation is not applied, exactly as if the process had
    /// crashed at that instant.
    fn append_and_apply(&self, payload: &[u8], apply: impl FnOnce(&Catalog)) -> Result<()> {
        self.append_all_and_apply(&[payload], apply)
    }

    /// [`DurableCatalog::append_and_apply`] over a batch: every payload
    /// is framed, written, and fsynced in one journal-lock hold, then
    /// `apply` runs once. Live readers therefore observe none or all of
    /// the batch; on disk the records are individual frames, so a crash
    /// mid-batch may persist (and replay) a prefix — each frame is a
    /// complete, self-validating mutation either way.
    fn append_all_and_apply(&self, payloads: &[&[u8]], apply: impl FnOnce(&Catalog)) -> Result<()> {
        let _span = obs::span("wal_append");
        if self.readonly.load(Ordering::SeqCst) {
            return Err(StoreError::ReadOnly);
        }
        let mut w = self.journal.lock();
        w.heal()?;
        let mut framed = Vec::new();
        for payload in payloads {
            framed.extend_from_slice(&frame(payload)?);
        }
        if self.take_kill(KillPoint::JournalAppend) {
            // Torn write: only a prefix of the frame reaches the disk.
            let torn = &framed[..framed.len() / 2];
            w.file
                .write_all(torn)
                .and_then(|()| w.file.sync_data())
                .map_err(|e| io_err("torn journal append", e))?;
            w.dirty = true;
            return Err(StoreError::Io(format!(
                "kill point {}: crashed mid-append",
                KillPoint::JournalAppend.name()
            )));
        }
        if self.take_kill(KillPoint::JournalFsync) {
            // The full frame was written but never fsynced. On real
            // hardware it may or may not survive; in this simulation it
            // does, so recovery lands on the post-fault state.
            w.file
                .write_all(&framed)
                .map_err(|e| io_err("journal append", e))?;
            w.bytes += framed.len() as u64;
            return Err(StoreError::Io(format!(
                "kill point {}: crashed before fsync",
                KillPoint::JournalFsync.name()
            )));
        }
        if let Some(fault) = self.take_io_fault(KillPoint::JournalAppend) {
            // Error return, not a crash: the write(2) failed wholesale,
            // no bytes reached the file, and the live store degrades.
            let err = Self::injected_io_error(KillPoint::JournalAppend, fault);
            self.enter_readonly(&err.to_string());
            return Err(err);
        }
        if let Some(fault) = self.take_io_fault(KillPoint::JournalFsync) {
            // The frame was written but fsync failed: the record is not
            // durable and must not count as committed. Truncate it back
            // out so the on-disk journal stays aligned with the
            // (unadvanced) in-memory state — the degraded store keeps
            // serving, unlike a crash.
            w.file
                .write_all(&framed)
                .map_err(|e| io_err("journal append", e))?;
            w.dirty = true;
            let healed = w.heal();
            let err = Self::injected_io_error(KillPoint::JournalFsync, fault);
            self.enter_readonly(&err.to_string());
            healed?;
            return Err(err);
        }
        if let Err(e) = w.file.write_all(&framed).and_then(|()| w.file.sync_data()) {
            // A real (uninjected) append failure degrades identically.
            w.dirty = true;
            let err = io_err("journal append", e);
            self.enter_readonly(&err.to_string());
            return Err(err);
        }
        w.bytes += framed.len() as u64;
        obs::gauge("wal_journal_bytes").set(w.bytes as f64);
        obs::counter("wal_append_total").add(payloads.len() as u64);
        obs::trace::wal_append(payloads.len() as u64, framed.len() as u64);
        apply(&self.catalog);
        Ok(())
    }

    /// Durable [`Catalog::put_with_spec`]: journaled, then applied.
    pub fn put_with_spec(
        &self,
        key: StatKey,
        histogram: StoredHistogram,
        spec: Option<BuilderSpec>,
    ) -> Result<()> {
        let payload = encode_put(&key, &histogram, spec)?;
        self.append_and_apply(&payload, |catalog| {
            catalog.put_with_spec(key, histogram, spec)
        })
    }

    /// Durable `put` without a recorded spec.
    pub fn put(&self, key: StatKey, histogram: StoredHistogram) -> Result<()> {
        self.put_with_spec(key, histogram, None)
    }

    /// Durable batched [`Catalog::put_all_with_spec`]: all records are
    /// journaled and fsynced under one journal-lock hold, then applied
    /// as a single catalog mutation (one epoch bump), so concurrent
    /// readers pinning a snapshot see none or all of the batch.
    pub fn put_all_with_spec(
        &self,
        items: Vec<(StatKey, StoredHistogram, Option<BuilderSpec>)>,
    ) -> Result<()> {
        if items.is_empty() {
            return Ok(());
        }
        let payloads: Vec<Vec<u8>> = items
            .iter()
            .map(|(key, hist, spec)| encode_put(key, hist, *spec))
            .collect::<Result<_>>()?;
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        self.append_all_and_apply(&refs, |catalog| catalog.put_all_with_spec(items))
    }

    /// Durable [`Catalog::put_matrix_with_spec`].
    pub fn put_matrix_with_spec(
        &self,
        key: StatKey,
        histogram: StoredMatrixHistogram,
        spec: Option<BuilderSpec>,
    ) -> Result<()> {
        let payload = encode_put_matrix(&key, &histogram, spec)?;
        self.append_and_apply(&payload, |catalog| {
            catalog.put_matrix_with_spec(key, histogram, spec)
        })
    }

    /// Durable feedback tune: computes the bounded, mass-conserving
    /// update one (estimate, actual) observation implies for `key`
    /// ([`Catalog::compute_tune`]), journals the tuned histogram as a
    /// [`TAG_TUNE`] record, and applies it — so tuned state survives
    /// crash recovery exactly like an ANALYZE store. The outer `Result`
    /// is "entry exists and the journal accepted the record"; the inner
    /// one is the tuner's applied-or-skipped verdict, with skips
    /// counted on `tune_skipped_total` and applications on
    /// `tune_applied_total` plus the `qerror_pre`/`qerror_post` gauges.
    pub fn tune_column(
        &self,
        key: &StatKey,
        estimate: f64,
        actual: f64,
        cfg: &TuneConfig,
    ) -> Result<std::result::Result<TuneReport, TuneSkip>> {
        let _span = obs::span("tune_column");
        let (tuned, report) = match self.catalog.compute_tune(key, estimate, actual, cfg)? {
            Ok(pair) => pair,
            Err(skip) => {
                obs::counter("tune_skipped_total").inc();
                obs::trace::tune_skipped(&key.display(), skip.reason());
                return Ok(Err(skip));
            }
        };
        let payload = encode_tune(key, &tuned)?;
        self.append_and_apply(&payload, |catalog| {
            // The entry cannot have vanished — a DurableCatalog never
            // removes entries — but a concurrent ANALYZE may have
            // replaced it between the computation and this apply;
            // last-writer-wins in journal order, exactly like `put`.
            let _ = catalog.apply_tune(key, tuned);
        })?;
        obs::counter("tune_applied_total").inc();
        obs::gauge("qerror_pre").set(report.qerror_pre);
        obs::gauge("qerror_post").set(report.qerror_post);
        obs::trace::tune_applied(&key.display(), report.qerror_pre, report.qerror_post);
        Ok(Ok(report))
    }

    /// Durable [`Catalog::note_updates`].
    pub fn note_updates(&self, relation: &str, updates: u64) -> Result<()> {
        self.append_and_apply(&encode_note_updates(relation, updates), |catalog| {
            catalog.note_updates(relation, updates)
        })
    }

    /// Durable end-to-end ANALYZE: the same scan → build pipeline as
    /// [`Catalog::analyze`], with the store journaled.
    pub fn analyze(&self, relation: &Relation, column: &str, spec: BuilderSpec) -> Result<StatKey> {
        let _span = obs::span("analyze");
        let table = frequency_table(relation, column)?;
        let stored = Catalog::build_stored(&table, spec)?;
        let key = StatKey::new(relation.name(), &[column]);
        self.put_with_spec(key.clone(), stored, Some(spec))?;
        Ok(key)
    }

    /// Durable 2-D ANALYZE, mirroring [`Catalog::analyze_matrix`].
    pub fn analyze_matrix(
        &self,
        relation: &Relation,
        first: &str,
        second: &str,
        spec: BuilderSpec,
    ) -> Result<StatKey> {
        let _span = obs::span("analyze_matrix");
        let table = frequency_matrix_table(relation, first, second)?;
        let hist = MatrixHistogram::build(&table.matrix, |cells| spec.build(cells))?;
        let stored = StoredMatrixHistogram::from_matrix_histogram(
            &table.row_values,
            &table.col_values,
            &hist,
        )?;
        let key = StatKey::new(relation.name(), &[first, second]);
        self.put_matrix_with_spec(key.clone(), stored, Some(spec))?;
        Ok(key)
    }

    /// Durable counterpart of `maintenance::maintain_column`: checks
    /// the policy and re-ANALYZEs through the journal when due. Refresh
    /// failures (including the [`KillPoint::DaemonRefresh`] fault) are
    /// recorded on the catalog entry for the breaker and metrics.
    pub fn maintain_column(
        &self,
        relation: &Relation,
        column: &str,
        spec: BuilderSpec,
        policy: &RefreshPolicy,
    ) -> Result<MaintenanceOutcome> {
        if relation.num_rows() == 0 {
            return Ok(MaintenanceOutcome::Fresh);
        }
        let key = StatKey::new(relation.name(), &[column]);
        let due = match self.catalog.staleness(&key) {
            Ok(s) => policy.due(s, relation.num_rows()),
            // Never analyzed: the first histogram is always due.
            Err(_) => true,
        };
        if !due {
            return Ok(MaintenanceOutcome::Fresh);
        }
        if self.readonly.load(Ordering::SeqCst) {
            // Degraded: skip the scan (its put would be refused anyway)
            // but record the failure so the breaker machinery reacts.
            let err = StoreError::ReadOnly;
            self.catalog.note_refresh_failure(&key, &err.to_string());
            return Err(err);
        }
        if self.take_kill(KillPoint::DaemonRefresh) {
            let err = StoreError::Io(format!(
                "kill point {}: crashed before refresh scan",
                KillPoint::DaemonRefresh.name()
            ));
            self.catalog.note_refresh_failure(&key, &err.to_string());
            return Err(err);
        }
        let refresh_spec = self.catalog.spec_of(&key).unwrap_or(spec);
        match self.analyze(relation, column, refresh_spec) {
            Ok(_) => Ok(MaintenanceOutcome::Refreshed),
            Err(e) => {
                self.catalog.note_refresh_failure(&key, &e.to_string());
                Err(e)
            }
        }
    }

    /// Compacts the journal into a new snapshot generation: write
    /// `catalog.<gen+1>.vohg.tmp` → fsync → rename → fsync dir → fresh
    /// journal. The previous generation (snapshot + journal) is kept;
    /// anything older is deleted. Version counters restart with the new
    /// generation (`VOHG` snapshots persist none), so recovered
    /// staleness always means "updates since the last checkpoint".
    pub fn checkpoint(&self) -> Result<()> {
        let _span = obs::span("wal_checkpoint");
        let mut w = self.journal.lock();
        w.heal()?;
        let next = w.generation + 1;
        // Encoding under the journal lock is load-bearing: writers
        // apply their mutation before releasing this lock (see
        // `append_and_apply`), so the snapshot covers every record the
        // outgoing journal holds and the fresh journal starts exactly
        // where the snapshot leaves off.
        let snapshot = codec::encode_catalog(&self.catalog);
        let final_path = self.dir.join(snapshot_name(next));
        let tmp_path = self.dir.join(format!("{}.tmp", snapshot_name(next)));
        // Any real I/O failure from here on degrades to read-only; a
        // fired kill point does not (it models the process dying, and
        // the store contract after one is drop-and-reopen).
        let degrade = |e: StoreError| {
            self.enter_readonly(&e.to_string());
            e
        };
        {
            let mut tmp =
                File::create(&tmp_path).map_err(|e| degrade(io_err("create snapshot tmp", e)))?;
            tmp.write_all(&snapshot)
                .and_then(|()| tmp.sync_all())
                .map_err(|e| degrade(io_err("write snapshot tmp", e)))?;
        }
        if self.take_kill(KillPoint::SnapshotRotate) {
            return Err(StoreError::Io(format!(
                "kill point {}: crashed before snapshot rename",
                KillPoint::SnapshotRotate.name()
            )));
        }
        if let Some(fault) = self.take_io_fault(KillPoint::SnapshotRotate) {
            // The rotation failed mid-checkpoint: the previous
            // generation stays current and fully readable; the
            // lingering tmp file is ignored by loaders and cleaned up
            // by the next successful checkpoint.
            return Err(degrade(Self::injected_io_error(
                KillPoint::SnapshotRotate,
                fault,
            )));
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| degrade(io_err("rename snapshot", e)))?;
        sync_dir(&self.dir).map_err(degrade)?;
        // Fresh journal for the new generation. Remove any crash
        // leftover first so the file really starts empty.
        let journal_path = self.dir.join(journal_name(next));
        match fs::remove_file(&journal_path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(degrade(io_err("clear stale journal", e))),
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| degrade(io_err("create journal", e)))?;
        sync_dir(&self.dir).map_err(degrade)?;
        let previous = w.generation;
        w.file = file;
        w.bytes = 0;
        w.generation = next;
        w.dirty = false;
        drop(w);
        // Garbage-collect everything older than the kept previous
        // generation. Best-effort: a leftover file only wastes space.
        for generation in snapshot_generations(&self.dir)? {
            if generation < previous {
                let _ = fs::remove_file(self.dir.join(snapshot_name(generation)));
                let _ = fs::remove_file(self.dir.join(journal_name(generation)));
            }
        }
        obs::gauge("wal_journal_bytes").set(0.0);
        obs::counter("wal_checkpoint_total").inc();
        obs::trace::wal_checkpoint(next);
        // A checkpoint is a full durable write through every site that
        // can have degraded us; surviving one proves the disk is back.
        if self.readonly.swap(false, Ordering::SeqCst) {
            obs::gauge("catalog_readonly").set(0.0);
            obs::trace::catalog_readonly(false, "checkpoint probe succeeded");
        }
        Ok(())
    }
}

/// Fsyncs a directory so a just-renamed or just-created file's
/// directory entry is durable (POSIX requires this extra step).
fn sync_dir(dir: &Path) -> Result<()> {
    let handle = File::open(dir).map_err(|e| io_err("open dir for fsync", e))?;
    handle.sync_all().map_err(|e| io_err("fsync dir", e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::relation_from_frequency_set;
    use freqdist::FrequencySet;
    use std::sync::atomic::{AtomicU64, Ordering};

    const SPEC: BuilderSpec = BuilderSpec::VOptEndBiased(3);

    /// A unique scratch directory per test, removed on drop.
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new() -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "relstore-wal-test-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            let _ = fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn relation() -> Relation {
        let freqs = FrequencySet::new(vec![50, 30, 10, 5, 5]);
        relation_from_frequency_set("t", "c", &freqs, 3).unwrap()
    }

    /// The full observable state recovery must reproduce.
    fn state_of(catalog: &Catalog) -> (Vec<u8>, Vec<(String, u64)>) {
        (
            codec::encode_catalog(catalog).to_vec(),
            catalog.version_snapshot(),
        )
    }

    #[test]
    fn journal_replay_recovers_all_mutations() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        store.analyze_matrix(&rel, "c", "c", SPEC).unwrap();
        store.note_updates("t", 7).unwrap();
        let expected = state_of(store.catalog());
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), expected);
        assert_eq!(recovered.staleness(&StatKey::new("t", &["c"])).unwrap(), 7);
    }

    #[test]
    fn batched_put_is_one_epoch_live_and_replays_identically() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        let hist = store.catalog().get(&StatKey::new("t", &["c"])).unwrap();
        let epoch_before = store.catalog().epoch();
        store
            .put_all_with_spec(vec![
                (StatKey::new("t", &["x"]), hist.clone(), Some(SPEC)),
                (StatKey::new("t", &["y"]), hist.clone(), Some(SPEC)),
                (StatKey::new("t", &["z"]), hist, None),
            ])
            .unwrap();
        // One live mutation for the whole batch.
        assert_eq!(store.catalog().epoch(), epoch_before + 1);
        let expected = state_of(store.catalog());
        drop(store);
        // Replay applies the three records individually but lands on
        // the same final state.
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), expected);
        assert_eq!(recovered.keys().len(), 4);
    }

    #[test]
    fn torn_tail_is_truncated_and_prior_records_survive() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        store.note_updates("t", 3).unwrap();
        let committed = state_of(store.catalog());
        let generation = store.generation();
        drop(store);
        // Simulate a crash mid-append: garbage half-record at the tail.
        let journal_path = scratch.path().join(journal_name(generation));
        let mut bytes = fs::read(&journal_path).unwrap();
        let full_len = bytes.len();
        bytes.extend_from_slice(&[42u8, 0, 0, 0, 1, 2, 3]);
        fs::write(&journal_path, &bytes).unwrap();
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), committed);
        // Re-opening physically truncates the torn tail.
        let store = DurableCatalog::open(scratch.path()).unwrap();
        assert_eq!(
            fs::metadata(&journal_path).unwrap().len() as usize,
            full_len
        );
        assert_eq!(state_of(store.catalog()), committed);
        // And the store keeps working after the repair.
        store.note_updates("t", 1).unwrap();
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(recovered.staleness(&StatKey::new("t", &["c"])).unwrap(), 4);
    }

    #[test]
    fn checkpoint_rotates_and_recovery_prefers_newest_snapshot() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(store.journal_bytes(), 0);
        // Post-checkpoint mutations land in the new generation's journal.
        store.note_updates("t", 5).unwrap();
        let expected = state_of(store.catalog());
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        // Histogram bytes identical; versions carry the post-checkpoint
        // window only (which is all the live store had too).
        assert_eq!(state_of(&recovered), expected);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_previous_generation() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        store.checkpoint().unwrap(); // generation 1
        let at_gen1 = codec::encode_catalog(store.catalog()).to_vec();
        store.note_updates("t", 9).unwrap();
        store.checkpoint().unwrap(); // generation 2; generation 1 kept
        drop(store);
        // Flip a byte inside the newest snapshot.
        let newest = scratch.path().join(snapshot_name(2));
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&newest, &bytes).unwrap();
        let recovered = Catalog::recover(scratch.path()).unwrap();
        // Generation 1's snapshot plus its journal (note_updates 9)
        // reproduce the pre-corruption histogram state.
        assert_eq!(codec::encode_catalog(&recovered).to_vec(), at_gen1);
        assert_eq!(recovered.staleness(&StatKey::new("t", &["c"])).unwrap(), 9);
    }

    #[test]
    fn kill_journal_append_recovers_pre_fault_state() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        let pre = state_of(store.catalog());
        store.arm_kill(KillPoint::JournalAppend);
        let err = store.note_updates("t", 8).unwrap_err();
        assert!(err.to_string().contains("journal_append"));
        // In-memory state was not advanced either.
        assert_eq!(state_of(store.catalog()), pre);
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), pre);
        // Reopen heals the torn tail and the store accepts appends.
        let store = DurableCatalog::open(scratch.path()).unwrap();
        store.note_updates("t", 2).unwrap();
        assert_eq!(
            store
                .catalog()
                .staleness(&StatKey::new("t", &["c"]))
                .unwrap(),
            2
        );
    }

    #[test]
    fn kill_journal_fsync_recovers_post_fault_state() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        let pre = state_of(store.catalog());
        store.arm_kill(KillPoint::JournalFsync);
        let err = store.note_updates("t", 8).unwrap_err();
        assert!(err.to_string().contains("journal_fsync"));
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        // The record reached the disk: recovery lands on the state the
        // mutation would have produced.
        let reference = codec::decode_catalog(Bytes::from(pre.0)).unwrap();
        reference.note_updates("t", 8);
        assert_eq!(state_of(&recovered), state_of(&reference));
    }

    #[test]
    fn kill_snapshot_rotate_keeps_current_generation() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        store.note_updates("t", 4).unwrap();
        let pre = state_of(store.catalog());
        store.arm_kill(KillPoint::SnapshotRotate);
        let err = store.checkpoint().unwrap_err();
        assert!(err.to_string().contains("snapshot_rotate"));
        assert_eq!(store.generation(), 0);
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), pre);
        // The lingering temp file does not confuse a reopen, and the
        // next checkpoint succeeds.
        let store = DurableCatalog::open(scratch.path()).unwrap();
        store.checkpoint().unwrap();
        assert_eq!(store.generation(), 1);
    }

    #[test]
    fn kill_daemon_refresh_preserves_entry_and_records_failure() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        let key = StatKey::new("t", &["c"]);
        store
            .maintain_column(&rel, "c", SPEC, &RefreshPolicy::default())
            .unwrap();
        store.note_updates("t", 61).unwrap();
        let pre = state_of(store.catalog());
        store.arm_kill(KillPoint::DaemonRefresh);
        let err = store
            .maintain_column(&rel, "c", SPEC, &RefreshPolicy::default())
            .unwrap_err();
        assert!(err.to_string().contains("daemon_refresh"));
        assert_eq!(state_of(store.catalog()), pre);
        assert_eq!(store.catalog().refresh_failure(&key).unwrap().count, 1);
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), pre);
    }

    /// Serialises the degraded-mode tests: they assert on the shared
    /// `catalog_readonly` gauge, which each of them toggles.
    static READONLY_GAUGE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn io_fault_on_journal_append_degrades_to_readonly_then_probe_restores() {
        let _gauge = READONLY_GAUGE_LOCK.lock();
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        let committed = state_of(store.catalog());
        store.arm_io_fault(KillPoint::JournalAppend, IoFault::Enospc);
        let err = store.note_updates("t", 8).unwrap_err();
        assert!(err.to_string().contains("enospc"), "{err}");
        assert!(err.to_string().contains("journal_append"), "{err}");
        // Degraded: reads serve the committed state, writes are typed.
        assert!(store.readonly());
        assert!(store.catalog().get(&StatKey::new("t", &["c"])).is_ok());
        assert_eq!(state_of(store.catalog()), committed);
        assert_eq!(store.note_updates("t", 1), Err(StoreError::ReadOnly));
        // On-disk state is byte-identically the committed state.
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), committed);
        // The probe (a clean checkpoint) restores read-write.
        assert!(store.probe_restore());
        assert!(!store.readonly());
        store.note_updates("t", 2).unwrap();
        assert_eq!(
            store
                .catalog()
                .staleness(&StatKey::new("t", &["c"]))
                .unwrap(),
            2
        );
    }

    #[test]
    fn io_fault_on_journal_fsync_commits_nothing_and_stays_aligned() {
        let _gauge = READONLY_GAUGE_LOCK.lock();
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        let committed = state_of(store.catalog());
        store.arm_io_fault(KillPoint::JournalFsync, IoFault::Eio);
        let err = store.note_updates("t", 8).unwrap_err();
        assert!(err.to_string().contains("eio"), "{err}");
        assert!(store.readonly());
        // Unlike the JournalFsync *kill point* (where the process dies
        // and the unsynced frame may survive), the live degraded store
        // truncates the unacknowledged frame: disk and memory agree.
        assert_eq!(state_of(store.catalog()), committed);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), committed);
        assert!(store.probe_restore());
        store.note_updates("t", 3).unwrap();
    }

    #[test]
    fn enospc_mid_checkpoint_leaves_catalog_readable_and_recoverable() {
        let _gauge = READONLY_GAUGE_LOCK.lock();
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        store.note_updates("t", 4).unwrap();
        let committed = state_of(store.catalog());
        store.arm_io_fault(KillPoint::SnapshotRotate, IoFault::Enospc);
        let err = store.checkpoint().unwrap_err();
        assert!(err.to_string().contains("enospc"), "{err}");
        assert!(err.to_string().contains("snapshot_rotate"), "{err}");
        assert!(store.readonly());
        assert_eq!(obs::gauge("catalog_readonly").get(), 1.0);
        // The previous generation stays current; the catalog stays
        // readable and byte-identically recoverable.
        assert_eq!(store.generation(), 0);
        assert_eq!(state_of(store.catalog()), committed);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), committed);
        // A refresh attempt while degraded is a typed failure that
        // feeds the breaker.
        store.catalog().note_updates("t", 100); // make the column due
        let refresh = store
            .maintain_column(&rel, "c", SPEC, &RefreshPolicy::default())
            .unwrap_err();
        assert_eq!(refresh, StoreError::ReadOnly);
        assert!(store
            .catalog()
            .refresh_failure(&StatKey::new("t", &["c"]))
            .is_some());
        // A subsequent clean sweep's probe exits read-only mode.
        assert!(store.probe_restore());
        assert!(!store.readonly());
        assert_eq!(obs::gauge("catalog_readonly").get(), 0.0);
        assert_eq!(store.generation(), 1);
    }

    #[test]
    fn empty_directory_recovers_to_empty_catalog() {
        let scratch = ScratchDir::new();
        fs::create_dir_all(scratch.path()).unwrap();
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert!(recovered.keys().is_empty());
        assert!(recovered.version_snapshot().is_empty());
    }

    #[test]
    fn checkpoint_concurrent_with_writers_loses_no_acknowledged_put() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        let hist = store.catalog().get(&StatKey::new("t", &["c"])).unwrap();
        // Writers put distinct keys while a checkpointer rotates
        // generations underneath them. Every put is acknowledged, so
        // every key must survive recovery — a checkpoint that snapshots
        // between a writer's journal append and its in-memory apply
        // would retire the journal holding the record while the
        // snapshot misses it, losing the key.
        std::thread::scope(|s| {
            for writer in 0..4u64 {
                let store = &store;
                let hist = &hist;
                s.spawn(move || {
                    for i in 0..16u64 {
                        let column = format!("w{writer}_{i}");
                        let key = StatKey::new("t", &[column.as_str()]);
                        store.put(key, hist.clone()).unwrap();
                    }
                });
            }
            let store = &store;
            s.spawn(move || {
                for _ in 0..12 {
                    store.checkpoint().unwrap();
                    std::thread::yield_now();
                }
            });
        });
        let expected = state_of(store.catalog());
        assert_eq!(store.catalog().keys().len(), 1 + 4 * 16);
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), expected);
    }

    #[test]
    fn old_generations_are_garbage_collected() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        store.analyze(&rel, "c", SPEC).unwrap();
        store.checkpoint().unwrap();
        store.note_updates("t", 1).unwrap();
        store.checkpoint().unwrap();
        store.note_updates("t", 1).unwrap();
        store.checkpoint().unwrap();
        let generations = snapshot_generations(scratch.path()).unwrap();
        // Current (3) and previous (2) survive; 1 and older are gone.
        assert_eq!(generations, vec![3, 2]);
    }

    #[test]
    fn tune_survives_recovery_and_rebuild_resets_the_counter() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        let key = store.analyze(&rel, "c", SPEC).unwrap();
        let before = store.catalog().get(&key).unwrap();
        // Feed one observation: the stored estimate for the hottest
        // value was 50, the workload saw 80.
        let report = store
            .tune_column(&key, 50.0, 80.0, &TuneConfig::default())
            .unwrap()
            .expect("applies");
        assert!(report.qerror_post < report.qerror_pre);
        let tuned = store.catalog().get(&key).unwrap();
        assert_ne!(tuned, before);
        assert_eq!(store.catalog().tuned_count(&key), 1);
        // Mass is conserved across the durable step.
        let mass =
            |h: &StoredHistogram| vopt_hist::feedback::total_mass(h.bucket_avgs(), h.bounds());
        assert_eq!(mass(&tuned), mass(&before));
        let expected = state_of(store.catalog());
        drop(store);
        // Journal replay reproduces the tuned histogram AND the tune
        // counter (the TAG_TUNE record replays through apply_tune).
        let recovered = Catalog::recover(scratch.path()).unwrap();
        assert_eq!(state_of(&recovered), expected);
        assert_eq!(recovered.get(&key).unwrap(), tuned);
        assert_eq!(recovered.tuned_count(&key), 1);
        // A full re-ANALYZE resets the tuned counter: tuning refines a
        // build, a rebuild starts a new one.
        let store = DurableCatalog::open(scratch.path()).unwrap();
        store.analyze(&rel, "c", SPEC).unwrap();
        assert_eq!(store.catalog().tuned_count(&key), 0);
        assert_eq!(store.catalog().get(&key).unwrap(), before);
    }

    #[test]
    fn tuned_contents_survive_checkpoint_but_the_counter_does_not() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        let key = store.analyze(&rel, "c", SPEC).unwrap();
        store
            .tune_column(&key, 50.0, 80.0, &TuneConfig::default())
            .unwrap()
            .expect("applies");
        let tuned = store.catalog().get(&key).unwrap();
        store.checkpoint().unwrap();
        drop(store);
        let recovered = Catalog::recover(scratch.path()).unwrap();
        // The histogram the tune produced is in the snapshot...
        assert_eq!(recovered.get(&key).unwrap(), tuned);
        // ...but like the version counters, the tune counter is not
        // persisted in VOHG snapshots: recovered counts are tunes
        // since the last checkpoint.
        assert_eq!(recovered.tuned_count(&key), 0);
    }

    #[test]
    fn tune_skip_touches_neither_journal_nor_catalog() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        let key = store.analyze(&rel, "c", SPEC).unwrap();
        let bytes_before = store.journal_bytes();
        let state_before = state_of(store.catalog());
        let verdict = store
            .tune_column(&key, 50.0, 50.0, &TuneConfig::default())
            .unwrap();
        assert_eq!(verdict, Err(vopt_hist::feedback::TuneSkip::NegligibleError));
        assert_eq!(store.journal_bytes(), bytes_before);
        assert_eq!(state_of(store.catalog()), state_before);
        assert_eq!(store.catalog().tuned_count(&key), 0);
    }

    #[test]
    fn tune_of_a_missing_entry_is_a_typed_error() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let err = store
            .tune_column(
                &StatKey::new("ghost", &["c"]),
                1.0,
                2.0,
                &TuneConfig::default(),
            )
            .unwrap_err();
        assert!(matches!(err, StoreError::MissingStatistics { .. }));
    }

    #[test]
    fn degraded_store_refuses_tunes_and_restores_after_probe() {
        let _gauge = READONLY_GAUGE_LOCK.lock();
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        let rel = relation();
        let key = store.analyze(&rel, "c", SPEC).unwrap();
        let committed = state_of(store.catalog());
        store.arm_io_fault(KillPoint::JournalAppend, IoFault::Enospc);
        let err = store
            .tune_column(&key, 50.0, 80.0, &TuneConfig::default())
            .unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        // Degraded: the failed tune changed nothing, and further tunes
        // are refused with the typed read-only error — exactly the
        // ladder behaviour an un-tuned store has.
        assert_eq!(state_of(store.catalog()), committed);
        let err = store
            .tune_column(&key, 50.0, 80.0, &TuneConfig::default())
            .unwrap_err();
        assert!(matches!(err, StoreError::ReadOnly));
        // A successful probe restores read-write and tuning resumes.
        assert!(store.probe_restore());
        store
            .tune_column(&key, 50.0, 80.0, &TuneConfig::default())
            .unwrap()
            .expect("applies after restore");
        assert_eq!(store.catalog().tuned_count(&key), 1);
    }

    #[test]
    fn self_tuning_daemon_tunes_from_quality_feedback_once_per_observation() {
        let scratch = ScratchDir::new();
        let store = DurableCatalog::open(scratch.path()).unwrap();
        // A relation name no other test's quality recording touches —
        // the monitor's `col:` scopes are process-global.
        let freqs = FrequencySet::new(vec![50, 30, 10, 5, 5]);
        let rel = Arc::new(relation_from_frequency_set("wal_tune_rel", "c", &freqs, 3).unwrap());
        let key = store.analyze(&rel, "c", SPEC).unwrap();
        let mut core = crate::daemon::DaemonCore::new(crate::daemon::DaemonConfig {
            self_tune: true,
            ..Default::default()
        });
        core.register_with_spec(Arc::clone(&rel), "c", SPEC);
        // No quality observation yet: the feedback pass does nothing.
        core.tick(&store);
        assert_eq!(store.catalog().tuned_count(&key), 0);
        // One observation arrives on the column's quality scope; the
        // next sweep consumes it exactly once.
        obs::quality::record_quality(&format!("col:{}.c", rel.name()), 50.0, 80.0);
        core.tick(&store);
        assert_eq!(store.catalog().tuned_count(&key), 1);
        assert!(core
            .trace()
            .iter()
            .any(|e| matches!(e, crate::daemon::DaemonEvent::Tuned { .. })));
        // Re-sweeping without a new observation tunes nothing more.
        core.tick(&store);
        core.tick(&store);
        assert_eq!(store.catalog().tuned_count(&key), 1);
    }

    // Satellite: the journal-frame properties of the tune record —
    // round-trip, truncation, and corruption all land in defined
    // states (replayed exactly, dropped as torn, or a typed error;
    // never a panic, never a silently different histogram).
    mod tune_frame_props {
        use super::*;
        use proptest::prelude::*;

        /// Parts for a valid multi-bucket histogram: one singleton
        /// bucket per frequency, value `i` in bucket `i`, bucket 0
        /// default (its value unlisted).
        fn hist_from_freqs(freqs: &[u64]) -> StoredHistogram {
            let bounds = (0..freqs.len() as u64)
                .map(|v| vopt_hist::ValueBounds {
                    lo: v,
                    hi: v + 1,
                    distinct: 1,
                })
                .collect();
            let exceptions = (1..freqs.len() as u64).map(|v| (v, v as u32)).collect();
            StoredHistogram::from_parts(freqs.to_vec(), 0, exceptions, bounds).unwrap()
        }

        /// A catalog holding a pre-existing entry for `key`, as every
        /// tune record requires.
        fn seeded(key: &StatKey, freqs: &[u64]) -> Catalog {
            let catalog = Catalog::new();
            catalog.put_with_spec(key.clone(), hist_from_freqs(freqs), Some(SPEC));
            catalog
        }

        proptest! {
            #[test]
            fn tune_frame_round_trips(
                freqs in proptest::collection::vec(0u64..=1_000, 2..20),
                col in "[a-z]{1,8}",
            ) {
                let key = StatKey::new("t", &[col.as_str()]);
                let tuned = hist_from_freqs(&freqs);
                let payload = encode_tune(&key, &tuned).unwrap();
                let framed = frame(&payload).unwrap();
                let (valid_len, records) = scan_journal(&framed);
                prop_assert_eq!(valid_len, framed.len());
                prop_assert_eq!(records.len(), 1);
                let catalog = seeded(&key, &freqs);
                apply_record(&catalog, records[0].clone()).unwrap();
                prop_assert_eq!(catalog.get(&key).unwrap(), tuned);
                prop_assert_eq!(catalog.tuned_count(&key), 1);
            }

            #[test]
            fn truncated_tune_frame_scans_as_torn_tail(
                freqs in proptest::collection::vec(0u64..=1_000, 2..20),
                cut_frac in 0.0f64..1.0,
            ) {
                let key = StatKey::new("t", &["c"]);
                let payload = encode_tune(&key, &hist_from_freqs(&freqs)).unwrap();
                let framed = frame(&payload).unwrap();
                let cut = ((framed.len() as f64) * cut_frac) as usize;
                let (valid_len, records) = scan_journal(&framed[..cut]);
                // A short frame is a torn tail, discarded whole.
                prop_assert_eq!(valid_len, 0);
                prop_assert!(records.is_empty());
            }

            #[test]
            fn truncated_tune_payload_is_a_typed_error(
                freqs in proptest::collection::vec(0u64..=1_000, 2..20),
                cut_frac in 0.0f64..1.0,
            ) {
                // Corruption that *forges a valid checksum*: the frame
                // verifies but the record inside is short. Recovery
                // must surface a typed error, not panic or misapply.
                let key = StatKey::new("t", &["c"]);
                let payload = encode_tune(&key, &hist_from_freqs(&freqs)).unwrap();
                let cut = ((payload.len() as f64) * cut_frac) as usize;
                if cut == payload.len() {
                    return Ok(());
                }
                let catalog = seeded(&key, &freqs);
                let before = codec::encode_catalog(&catalog).to_vec();
                let err = apply_record(
                    &catalog,
                    Bytes::copy_from_slice(&payload[..cut]),
                ).unwrap_err();
                prop_assert!(matches!(
                    err,
                    StoreError::Codec(_) | StoreError::MissingStatistics { .. }
                ));
                prop_assert_eq!(codec::encode_catalog(&catalog).to_vec(), before);
            }

            #[test]
            fn bit_flipped_tune_frame_never_replays_a_different_record(
                freqs in proptest::collection::vec(0u64..=1_000, 2..20),
                flip in 0usize..4096,
            ) {
                let key = StatKey::new("t", &["c"]);
                let payload = encode_tune(&key, &hist_from_freqs(&freqs)).unwrap();
                let mut framed = frame(&payload).unwrap();
                let byte = flip / 8 % framed.len();
                framed[byte] ^= 1 << (flip % 8);
                let (_, records) = scan_journal(&framed);
                // The FxHash-64 frame checksum rejects the flip: either
                // the journal scans as torn (no records), or — when the
                // flip lands in dead framing space that cannot happen
                // here — the surviving record equals the original.
                for record in records {
                    prop_assert_eq!(record.as_ref(), payload.as_slice());
                }
            }
        }
    }
}
