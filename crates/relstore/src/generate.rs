//! Materialising relations from frequency distributions.
//!
//! Every synthetic experiment in the paper is defined by frequency
//! structures (a Zipf frequency set, an arrangement over a domain); this
//! module turns those structures into actual tuples so that statistics
//! collection, sampling, and joins run against a real relation rather
//! than against the abstraction they are meant to estimate.

use crate::error::{Result, StoreError};
use crate::relation::Relation;
use crate::schema::Schema;
use freqdist::{FreqMatrix, FrequencySet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds a single-column relation where domain value `values[i]` occurs
/// exactly `freqs[i]` times. Tuple order is shuffled with `seed` so that
/// order-sensitive consumers (reservoir sampling) see no artefacts.
pub fn relation_from_frequencies(
    name: impl Into<String>,
    column: &str,
    values: &[u64],
    freqs: &FrequencySet,
    seed: u64,
) -> Result<Relation> {
    if values.len() != freqs.len() {
        return Err(StoreError::InvalidParameter(format!(
            "{} domain values but {} frequencies",
            values.len(),
            freqs.len()
        )));
    }
    let total = freqs.total();
    let mut col: Vec<u64> = Vec::with_capacity(total as usize);
    for (&v, &f) in values.iter().zip(freqs.as_slice()) {
        col.extend(std::iter::repeat_n(v, f as usize));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    col.shuffle(&mut rng);
    Relation::from_columns(name, Schema::new([column])?, vec![col])
}

/// Like [`relation_from_frequencies`] with the canonical domain
/// `0..freqs.len()`.
pub fn relation_from_frequency_set(
    name: impl Into<String>,
    column: &str,
    freqs: &FrequencySet,
    seed: u64,
) -> Result<Relation> {
    let values: Vec<u64> = (0..freqs.len() as u64).collect();
    relation_from_frequencies(name, column, &values, freqs, seed)
}

/// Builds a two-column relation realising a frequency matrix: the pair
/// `(row_values[k], col_values[l])` occurs exactly `matrix[(k, l)]`
/// times.
pub fn relation_from_matrix(
    name: impl Into<String>,
    first: &str,
    second: &str,
    row_values: &[u64],
    col_values: &[u64],
    matrix: &FreqMatrix,
    seed: u64,
) -> Result<Relation> {
    if row_values.len() != matrix.rows() || col_values.len() != matrix.cols() {
        return Err(StoreError::InvalidParameter(format!(
            "dictionaries ({} x {}) do not match matrix shape ({} x {})",
            row_values.len(),
            col_values.len(),
            matrix.rows(),
            matrix.cols()
        )));
    }
    let total = matrix.total() as usize;
    let mut a = Vec::with_capacity(total);
    let mut b = Vec::with_capacity(total);
    for (k, &rv) in row_values.iter().enumerate() {
        for (l, &cv) in col_values.iter().enumerate() {
            let f = matrix.get(k, l) as usize;
            a.extend(std::iter::repeat_n(rv, f));
            b.extend(std::iter::repeat_n(cv, f));
        }
    }
    // Shuffle both columns with the same permutation to keep pairs intact.
    let mut order: Vec<usize> = (0..total).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let a_shuffled: Vec<u64> = order.iter().map(|&i| a[i]).collect();
    let b_shuffled: Vec<u64> = order.iter().map(|&i| b[i]).collect();
    Relation::from_columns(
        name,
        Schema::new([first, second])?,
        vec![a_shuffled, b_shuffled],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{frequency_matrix_table, frequency_table};

    #[test]
    fn frequencies_round_trip_through_statistics() {
        let freqs = FrequencySet::new(vec![5, 0, 3, 1]);
        let rel = relation_from_frequency_set("r", "a", &freqs, 7).unwrap();
        assert_eq!(rel.num_rows(), 9);
        let t = frequency_table(&rel, "a").unwrap();
        // Value 1 has frequency 0 and so never appears.
        assert_eq!(t.values, vec![0, 2, 3]);
        assert_eq!(t.freqs, vec![5, 3, 1]);
    }

    #[test]
    fn shuffling_is_reproducible() {
        let freqs = FrequencySet::new(vec![2, 2]);
        let a = relation_from_frequency_set("r", "a", &freqs, 1).unwrap();
        let b = relation_from_frequency_set("r", "a", &freqs, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dictionary_mismatch_rejected() {
        let freqs = FrequencySet::new(vec![1, 1]);
        assert!(relation_from_frequencies("r", "a", &[1], &freqs, 0).is_err());
    }

    #[test]
    fn matrix_round_trips_through_statistics() {
        let m = FreqMatrix::from_rows(2, 3, vec![2, 0, 1, 0, 3, 0]).unwrap();
        let rel = relation_from_matrix("r", "a", "b", &[10, 20], &[7, 8, 9], &m, 3).unwrap();
        assert_eq!(rel.num_rows(), 6);
        let t = frequency_matrix_table(&rel, "a", "b").unwrap();
        // Zero-frequency pairs are absent from the scan, so the recovered
        // matrix may be smaller; check surviving pair counts.
        assert_eq!(t.row_values, vec![10, 20]);
        assert_eq!(t.col_values, vec![7, 8, 9]);
        assert_eq!(t.matrix.get(0, 0), 2);
        assert_eq!(t.matrix.get(0, 2), 1);
        assert_eq!(t.matrix.get(1, 1), 3);
    }

    #[test]
    fn matrix_shape_mismatch_rejected() {
        let m = FreqMatrix::zeros(2, 2);
        assert!(relation_from_matrix("r", "a", "b", &[1], &[1, 2], &m, 0).is_err());
    }
}
