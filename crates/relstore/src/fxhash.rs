//! An FxHash-style hasher for integer-keyed hash tables.
//!
//! Algorithm *Matrix* (§3.3) builds per-value frequency counters with a
//! hash table in a single scan; SipHash (std's default) dominates that
//! scan for integer keys. The Rust performance guide recommends
//! `rustc-hash`'s Fx algorithm for exactly this case; since only the
//! sanctioned offline crates may be used, we implement the same
//! multiply-rotate mix here (~15 lines) rather than add a dependency.
//! The `substrate` bench compares it against SipHash.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplier (from Firefox / rustc-hash): a large odd
/// constant close to 2⁶⁴/φ, giving good avalanche for sequential keys.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted integer keys.
///
/// Not HashDoS-resistant — statistics collection hashes our own data.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add_to_hash(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add_to_hash(value as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Creates an empty [`FxHashMap`] with at least `capacity` slots.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let h = |v: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn sequential_keys_spread() {
        // The low bits (used by HashMap for bucket selection) must differ
        // across sequential keys.
        let mut low_bits = std::collections::HashSet::new();
        for v in 0u64..64 {
            let mut hasher = FxHasher::default();
            hasher.write_u64(v);
            low_bits.insert(hasher.finish() & 0x3f);
        }
        assert!(
            low_bits.len() > 32,
            "only {} distinct low-bit patterns",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_matches_word_writes_for_whole_words() {
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn partial_tail_bytes_hash() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn works_as_hashmap_hasher() {
        let mut m: FxHashMap<u64, u64> = fx_map_with_capacity(100);
        for i in 0..1000u64 {
            *m.entry(i % 37).or_insert(0) += 1;
        }
        assert_eq!(m.len(), 37);
        assert_eq!(m.values().sum::<u64>(), 1000);
    }
}
