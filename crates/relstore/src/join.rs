//! Hash-join execution.
//!
//! The substrate's ground truth: result sizes computed by actually
//! joining tuples, against which Theorem 2.1's matrix products are
//! cross-checked in the integration tests. [`hash_join_count`] counts
//! matches without materialising them; [`materialize_join`] produces the
//! result relation (for small inputs and chain-join ground truth).

use crate::error::Result;
use crate::fxhash::{fx_map_with_capacity, FxHashMap};
use crate::relation::Relation;
use crate::schema::Schema;

/// Counts the result size of `left ⋈ right` on one equality predicate by
/// building a frequency table over the build side and probing with the
/// other — no tuples are materialised, so result sizes far beyond memory
/// are exact and cheap.
pub fn hash_join_count(
    left: &Relation,
    left_col: &str,
    right: &Relation,
    right_col: &str,
) -> Result<u128> {
    let _span = obs::span("hash_join_count");
    obs::counter("relstore_hash_join_total").inc();
    let build = left.column_by_name(left_col)?;
    let probe = right.column_by_name(right_col)?;
    let mut table: FxHashMap<u64, u64> = fx_map_with_capacity(build.len().min(1 << 16));
    for &v in build {
        *table.entry(v).or_insert(0) += 1;
    }
    let mut count: u128 = 0;
    for v in probe {
        if let Some(&c) = table.get(v) {
            count += c as u128;
        }
    }
    Ok(count)
}

/// Materialises `left ⋈ right` on one equality predicate. Output columns
/// are all of `left`'s followed by all of `right`'s, with the right
/// columns renamed `"<right name>.<col>"` on clashes.
///
/// Intended for small inputs (tests, chain-join ground truth); the output
/// size is the true join cardinality.
pub fn materialize_join(
    left: &Relation,
    left_col: &str,
    right: &Relation,
    right_col: &str,
) -> Result<Relation> {
    let l_key = left.column_by_name(left_col)?;
    let r_key = right.column_by_name(right_col)?;

    // Build: key → row indices of the left relation.
    let mut table: FxHashMap<u64, Vec<u32>> = fx_map_with_capacity(l_key.len().min(1 << 16));
    for (i, &v) in l_key.iter().enumerate() {
        table.entry(v).or_default().push(i as u32);
    }

    let mut names: Vec<String> = left
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect();
    for c in right.schema().columns() {
        let name = if names.contains(&c.name) {
            format!("{}.{}", right.name(), c.name)
        } else {
            c.name.clone()
        };
        names.push(name);
    }
    let schema = Schema::new(names)?;

    let l_arity = left.schema().arity();
    let r_arity = right.schema().arity();
    let mut columns: Vec<Vec<u64>> = vec![Vec::new(); l_arity + r_arity];
    for (j, &v) in r_key.iter().enumerate() {
        if let Some(rows) = table.get(&v) {
            for &i in rows {
                for (c, col) in columns.iter_mut().take(l_arity).enumerate() {
                    col.push(left.column(c)[i as usize]);
                }
                for c in 0..r_arity {
                    columns[l_arity + c].push(right.column(c)[j]);
                }
            }
        }
    }
    Relation::from_columns(
        format!("{}_join_{}", left.name(), right.name()),
        schema,
        columns,
    )
}

/// Executes a chain query `R₀ ⋈ R₁ ⋈ … ⋈ R_N` by repeated materialising
/// joins and returns the exact result cardinality.
///
/// `joins[k]` names the join columns between the running result and
/// `relations[k + 1]`: `(left column name in the running result, right
/// column name in relations[k + 1])`. Ground truth for small chains.
pub fn chain_join_count(relations: &[&Relation], joins: &[(&str, &str)]) -> Result<u128> {
    assert_eq!(
        joins.len() + 1,
        relations.len(),
        "a chain of N+1 relations has N joins"
    );
    if relations.is_empty() {
        return Ok(0);
    }
    if relations.len() == 1 {
        return Ok(relations[0].num_rows() as u128);
    }
    let mut acc = relations[0].clone();
    for (k, &(lcol, rcol)) in joins.iter().enumerate() {
        // The last join only needs the count, not the tuples.
        if k + 2 == relations.len() {
            return hash_join_count(&acc, lcol, relations[k + 1], rcol);
        }
        acc = materialize_join(&acc, lcol, relations[k + 1], rcol)?;
    }
    Ok(acc.num_rows() as u128)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relation(name: &str, cols: &[&str], rows: &[&[u64]]) -> Relation {
        let schema = Schema::new(cols.iter().copied()).unwrap();
        let mut r = Relation::empty(name, schema);
        for row in rows {
            r.push_row(row).unwrap();
        }
        r
    }

    #[test]
    fn count_matches_materialisation() {
        let l = relation("l", &["a", "x"], &[&[1, 100], &[1, 101], &[2, 102]]);
        let r = relation("r", &["a", "y"], &[&[1, 7], &[2, 8], &[2, 9], &[3, 10]]);
        let count = hash_join_count(&l, "a", &r, "a").unwrap();
        let mat = materialize_join(&l, "a", &r, "a").unwrap();
        assert_eq!(count, mat.num_rows() as u128);
        assert_eq!(count, 2 + 2); // value 1: 2*1, value 2: 1*2
    }

    #[test]
    fn join_on_empty_side_is_empty() {
        let l = relation("l", &["a"], &[]);
        let r = relation("r", &["a"], &[&[1]]);
        assert_eq!(hash_join_count(&l, "a", &r, "a").unwrap(), 0);
        assert_eq!(materialize_join(&l, "a", &r, "a").unwrap().num_rows(), 0);
    }

    #[test]
    fn materialised_schema_renames_clashes() {
        let l = relation("l", &["a", "b"], &[&[1, 2]]);
        let r = relation("rr", &["a", "c"], &[&[1, 3]]);
        let j = materialize_join(&l, "a", &r, "a").unwrap();
        let names: Vec<_> = j
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, vec!["a", "b", "rr.a", "c"]);
        assert_eq!(j.iter_rows().next().unwrap(), vec![1, 2, 1, 3]);
    }

    #[test]
    fn chain_of_three_relations() {
        // R0(a1), R1(a1, a2), R2(a2) — the paper's canonical chain shape.
        let r0 = relation("r0", &["a1"], &[&[1], &[1], &[2]]);
        let r1 = relation(
            "r1",
            &["a1", "a2"],
            &[&[1, 10], &[1, 11], &[2, 10], &[3, 12]],
        );
        let r2 = relation("r2", &["a2"], &[&[10], &[10], &[11]]);
        let count = chain_join_count(&[&r0, &r1, &r2], &[("a1", "a1"), ("a2", "a2")]).unwrap();
        // Exact: value-level product. r0.a1: {1:2, 2:1}; pairs in r1;
        // r2.a2: {10:2, 11:1}.
        // (1,10):1*2*2=4  (1,11):1*2*1=2  (2,10):1*1*2=2  (3,12): no a1=3 in r0.
        assert_eq!(count, 8);
    }

    #[test]
    fn single_relation_chain_counts_rows() {
        let r = relation("r", &["a"], &[&[1], &[2]]);
        assert_eq!(chain_join_count(&[&r], &[]).unwrap(), 2);
    }

    #[test]
    #[should_panic(expected = "a chain of N+1 relations has N joins")]
    fn mismatched_joins_panic() {
        let r = relation("r", &["a"], &[&[1]]);
        let _ = chain_join_count(&[&r, &r], &[]);
    }
}
