//! Columnar relations.
//!
//! A [`Relation`] stores its tuples column-wise (`Vec<u64>` per column),
//! which makes the single-column scans of Algorithm *Matrix* and the
//! key-column probes of the hash join cache-friendly. Values are
//! dictionary-encoded domain ids.

use crate::error::{Result, StoreError};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// A named, columnar relation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    name: String,
    schema: Schema,
    columns: Vec<Vec<u64>>,
    rows: usize,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Self {
            name: name.into(),
            schema,
            columns,
            rows: 0,
        }
    }

    /// Builds a relation directly from columns (all must share a length).
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<Vec<u64>>,
    ) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(StoreError::ArityMismatch {
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let rows = columns.first().map_or(0, Vec::len);
        if columns.iter().any(|c| c.len() != rows) {
            return Err(StoreError::InvalidParameter(
                "columns have unequal lengths".into(),
            ));
        }
        Ok(Self {
            name: name.into(),
            schema,
            columns,
            rows,
        })
    }

    /// Appends one tuple.
    pub fn push_row(&mut self, row: &[u64]) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(StoreError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples `T`.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// A column by position.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn column(&self, idx: usize) -> &[u64] {
        &self.columns[idx]
    }

    /// A column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[u64]> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| StoreError::UnknownColumn {
                column: name.into(),
                relation: self.name.clone(),
            })?;
        Ok(&self.columns[idx])
    }

    /// Iterates tuples row-wise (materialising a small buffer per row);
    /// intended for tests and small relations.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<u64>> + '_ {
        (0..self.rows).map(move |r| self.columns.iter().map(|c| c[r]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col() -> Relation {
        let schema = Schema::new(["a", "b"]).unwrap();
        let mut r = Relation::empty("r", schema);
        r.push_row(&[1, 10]).unwrap();
        r.push_row(&[2, 20]).unwrap();
        r.push_row(&[1, 30]).unwrap();
        r
    }

    #[test]
    fn push_and_scan() {
        let r = two_col();
        assert_eq!(r.num_rows(), 3);
        assert_eq!(r.column(0), &[1, 2, 1]);
        assert_eq!(r.column_by_name("b").unwrap(), &[10, 20, 30]);
    }

    #[test]
    fn arity_checked() {
        let mut r = two_col();
        assert!(matches!(
            r.push_row(&[1]),
            Err(StoreError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn unknown_column_rejected() {
        let r = two_col();
        assert!(matches!(
            r.column_by_name("z"),
            Err(StoreError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn from_columns_validates_lengths() {
        let schema = Schema::new(["a", "b"]).unwrap();
        assert!(Relation::from_columns("r", schema.clone(), vec![vec![1], vec![]]).is_err());
        let ok = Relation::from_columns("r", schema.clone(), vec![vec![1], vec![2]]).unwrap();
        assert_eq!(ok.num_rows(), 1);
        assert!(Relation::from_columns("r", schema, vec![vec![1]]).is_err());
    }

    #[test]
    fn iter_rows_round_trips() {
        let r = two_col();
        let rows: Vec<_> = r.iter_rows().collect();
        assert_eq!(rows, vec![vec![1, 10], vec![2, 20], vec![1, 30]]);
    }

    #[test]
    fn empty_relation() {
        let r = Relation::empty("e", Schema::new(["x"]).unwrap());
        assert_eq!(r.num_rows(), 0);
        assert_eq!(r.iter_rows().count(), 0);
    }
}
