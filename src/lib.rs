//! Facade crate for the reproduction of *Ioannidis & Poosala,
//! "Balancing Histogram Optimality and Practicality for Query Result Size
//! Estimation" (SIGMOD 1995)*.
//!
//! Re-exports the workspace crates under one roof so that examples and
//! downstream users can depend on a single package:
//!
//! * [`freqdist`] — frequency sets/matrices, Zipf and synthetic
//!   generators, arrangements, and exact chain products (Theorem 2.1).
//! * [`vopt_hist`] — the paper's contribution: serial, end-biased, and
//!   v-optimal histogram construction, error formulas, and the
//!   bucket-count advisor.
//! * [`relstore`] — a columnar relational substrate with statistics
//!   collection (Algorithms *Matrix* and *JointMatrix*), hash joins,
//!   sampling, and a statistics catalog.
//! * [`query`] — chain-join and selection queries, exact result sizes,
//!   and histogram-based estimation.
//! * [`engine`] — a `COUNT(*)` query engine: SQL-ish parser, exact
//!   execution, and System-R-style estimation from the catalog.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and per-experiment index.

pub use engine;
pub use freqdist;
pub use query;
pub use relstore;
pub use vopt_hist;
