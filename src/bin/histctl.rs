//! `histctl` — a small command-line tool around the histogram library:
//! generate synthetic relations as CSV, ANALYZE a column into a binary
//! catalog histogram, inspect it, and estimate selection/join sizes —
//! the end-to-end workflow a DBA would drive.
//!
//! ```text
//! histctl generate --rows 10000 --distinct 500 --skew 1.2 --out orders.csv
//! histctl analyze  --input orders.csv --column part --buckets 10 --out orders.voh
//! histctl analyze  --input orders.csv --column part --buckets 10 \
//!                  --class max_diff --out orders.voh
//! histctl inspect  --hist orders.voh
//! histctl estimate-eq   --hist orders.voh --value 42
//! histctl estimate-join --left orders.voh --right stock.voh --domain 500
//! histctl metrics --format prometheus
//! ```
//!
//! Every error path prints to stderr and exits nonzero; stdout carries
//! only the command's payload, so output can be piped safely.

use freqdist::zipf::zipf_frequencies;
use query::estimate::{estimate_equality, estimate_two_way_join};
use relstore::codec::{decode_histogram, encode_histogram};
use relstore::generate::relation_from_frequency_set;
use relstore::stats::frequency_table;
use relstore::{Relation, StoredHistogram};
use std::collections::HashMap;
use std::process::ExitCode;
use vopt_hist::BuilderSpec;

const USAGE: &str = "usage: histctl <command> [--flag value]...
commands:
  generate      --rows N --distinct M --skew Z --out FILE.csv [--column NAME] [--seed S]
  analyze       --input FILE.csv --column NAME --buckets B --out FILE.voh [--class CLASS]
  inspect       --hist FILE.voh
  estimate-eq   --hist FILE.voh --value V
  estimate-join --left A.voh --right B.voh --domain MAX_VALUE
  query         --sql QUERY --tables name=a.csv,name2=b.csv [--buckets B] [--class CLASS]
                (executes COUNT(*) exactly and prints the histogram estimate)
  metrics       [--format prometheus|json] [--buckets B] [--seed S]
                (runs a demo workload and prints the observability snapshot:
                 catalog hit/miss counters, per-class construction latency,
                 span timings, and per-histogram Q-error aggregates)
  serve         --data-dir DIR --tables name=a.csv,name2=b.csv
                [--sweeps N] [--tick-ms MS] [--buckets B] [--class CLASS]
                [--jitter-seed S] [--compact-bytes BYTES]
                (runs the crash-safe statistics service: opens the
                 journaled catalog in DIR, registers every column of the
                 given tables with the maintenance daemon, performs N
                 bounded sweeps, and prints the daemon's event trace plus
                 journal/breaker state)
  recover       --data-dir DIR
                (replays the newest valid snapshot plus journal tail in
                 DIR read-only and prints what survived)
  selftest      [--seed S] [--budget-ms MS] [--emit-snapshot FILE] [--snapshot FILE]
                (runs the oracle: differential checks of every histogram
                 class against brute-force ground truth plus fault
                 injection — including the crash-recovery kill-point
                 matrix; prints a deterministic JSON report and exits
                 nonzero on any violation. --emit-snapshot writes the
                 seed's reference catalog; --snapshot verifies one first)

CLASS names a registered histogram builder (default v_opt_end_biased),
optionally with an explicit budget: 'max_diff', 'equi_depth:20', or
'end_biased:H,L' for an explicit high/low split.";

/// Writes payload to stdout. A reader that closes the pipe early
/// (`histctl inspect ... | head`) ends the process quietly instead of
/// panicking; any other stdout failure surfaces as a normal error.
fn emit(args: std::fmt::Arguments<'_>, newline: bool) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let result = out
        .write_fmt(args)
        .and_then(|()| {
            if newline {
                out.write_all(b"\n")
            } else {
                Ok(())
            }
        })
        .and_then(|()| out.flush());
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(format!("stdout: {e}")),
    }
}

macro_rules! outln {
    ($($arg:tt)*) => {
        emit(format_args!($($arg)*), true)?
    };
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got '{flag}'"))?;
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}\n{USAGE}"))
}

fn parse_num<T: std::str::FromStr>(value: &str, name: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("--{name}: cannot parse '{value}'"))
}

/// Resolves the optional `--class` flag against the builder registry.
/// Unknown names surface the registry's own error, which lists every
/// valid spelling.
fn class_spec(flags: &HashMap<String, String>, buckets: usize) -> Result<BuilderSpec, String> {
    let class = flags
        .get("class")
        .map(String::as_str)
        .unwrap_or("v_opt_end_biased");
    BuilderSpec::parse(class, buckets).map_err(|e| e.to_string())
}

/// Writes a relation as CSV via `relstore::csv`.
fn write_csv(relation: &Relation, path: &str) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    relstore::csv::write_csv(relation, file).map_err(|e| e.to_string())
}

/// Reads a CSV relation via `relstore::csv`.
fn read_csv(path: &str, name: &str) -> Result<Relation, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("read {path}: {e}"))?;
    relstore::csv::read_csv(std::io::BufReader::new(file), name).map_err(|e| format!("{path}: {e}"))
}

fn load_histogram(path: &str) -> Result<StoredHistogram, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    decode_histogram(bytes.into()).map_err(|e| e.to_string())
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let rows: u64 = parse_num(required(flags, "rows")?, "rows")?;
    let distinct: usize = parse_num(required(flags, "distinct")?, "distinct")?;
    let skew: f64 = parse_num(required(flags, "skew")?, "skew")?;
    let out = required(flags, "out")?;
    let column = flags.get("column").map(String::as_str).unwrap_or("value");
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(42);
    let freqs = zipf_frequencies(rows, distinct, skew).map_err(|e| e.to_string())?;
    let relation = relation_from_frequency_set("generated", column, &freqs, seed)
        .map_err(|e| e.to_string())?;
    write_csv(&relation, out)?;
    outln!(
        "wrote {} rows over {} distinct values (zipf z={skew}) to {out}",
        relation.num_rows(),
        distinct
    );
    Ok(())
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = required(flags, "input")?;
    let column = required(flags, "column")?;
    let buckets: usize = parse_num(required(flags, "buckets")?, "buckets")?;
    let out = required(flags, "out")?;
    let relation = read_csv(input, "input")?;
    let table = frequency_table(&relation, column).map_err(|e| e.to_string())?;
    if table.freqs.is_empty() {
        return Err(format!("{input}: column '{column}' has no values"));
    }
    let spec = class_spec(flags, buckets)?;
    let opt = spec.build_opt(&table.freqs).map_err(|e| e.to_string())?;
    let stored = StoredHistogram::from_histogram(&table.values, &opt.histogram)
        .map_err(|e| e.to_string())?;
    let bytes = encode_histogram(&stored);
    std::fs::write(out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    outln!(
        "analyzed {} rows, {} distinct values -> {} {} buckets, {} catalog entries, \
         self-join error {:.1}; wrote {} bytes to {out}",
        relation.num_rows(),
        table.num_values(),
        stored.num_buckets(),
        spec.name(),
        stored.storage_entries(),
        opt.error,
        bytes.len()
    );
    Ok(())
}

fn cmd_inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let hist = load_histogram(required(flags, "hist")?)?;
    outln!(
        "buckets: {}   catalog entries: {}   default bucket: {}",
        hist.num_buckets(),
        hist.storage_entries(),
        hist.default_bucket()
    );
    for (i, &avg) in hist.bucket_avgs().iter().enumerate() {
        let members: Vec<String> = hist
            .exceptions()
            .iter()
            .filter(|&&(_, b)| b as usize == i)
            .map(|&(v, _)| v.to_string())
            .collect();
        if i as u32 == hist.default_bucket() {
            outln!("  bucket {i}: avg {avg}  (all values not listed below)");
        } else {
            outln!("  bucket {i}: avg {avg}  values [{}]", members.join(", "));
        }
    }
    Ok(())
}

fn cmd_estimate_eq(flags: &HashMap<String, String>) -> Result<(), String> {
    let hist = load_histogram(required(flags, "hist")?)?;
    let value: u64 = parse_num(required(flags, "value")?, "value")?;
    outln!("{}", estimate_equality(&hist, value));
    Ok(())
}

fn cmd_estimate_join(flags: &HashMap<String, String>) -> Result<(), String> {
    let left = load_histogram(required(flags, "left")?)?;
    let right = load_histogram(required(flags, "right")?)?;
    let max: u64 = parse_num(required(flags, "domain")?, "domain")?;
    let domain: Vec<u64> = (0..max).collect();
    outln!("{:.0}", estimate_two_way_join(&left, &right, &domain));
    Ok(())
}

fn cmd_query(flags: &HashMap<String, String>) -> Result<(), String> {
    let sql = required(flags, "sql")?;
    let tables = required(flags, "tables")?;
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let spec = class_spec(flags, buckets)?;
    let mut eng = engine::Engine::new();
    for entry in tables.split(',') {
        let (name, path) = entry
            .split_once('=')
            .ok_or_else(|| format!("--tables entry '{entry}' is not name=file.csv"))?;
        let relation = read_csv(path.trim(), name.trim())?;
        eng.register(relation);
    }
    eng.analyze_all_with(spec).map_err(|e| e.to_string())?;
    let query = eng.parse(sql).map_err(|e| e.to_string())?;
    let actual = eng.execute(&query).map_err(|e| e.to_string())?;
    let estimate = eng.estimate(&query).map_err(|e| e.to_string())?;
    let q_err = {
        let a = (actual as f64).max(1.0);
        (estimate.max(1e-9) / a).max(a / estimate.max(1e-9))
    };
    outln!("actual   {actual}");
    outln!(
        "estimate {estimate:.0}   (class={}, beta={}, q-error {q_err:.2}x)",
        spec.name(),
        spec.buckets()
    );
    Ok(())
}

/// Runs a small in-process workload exercising every instrumented layer,
/// then prints the observability snapshot. This is the CLI window into
/// `obs`: catalog hit/miss/put counters, one construction-latency
/// histogram per histogram class, span timings, and per-histogram
/// Q-error aggregates from the quality monitor.
fn cmd_metrics(flags: &HashMap<String, String>) -> Result<(), String> {
    let format = flags
        .get("format")
        .map(String::as_str)
        .unwrap_or("prometheus");
    if format != "prometheus" && format != "json" {
        return Err(format!(
            "--format must be 'prometheus' or 'json', got '{format}'"
        ));
    }
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(42);

    obs::register_well_known();

    // Build every histogram class once over a skewed frequency set: each
    // construction feeds its `construction_seconds{class=...}` latency
    // histogram, and the self-join estimate feeds a `self_join/<class>`
    // Q-error scope.
    use query::montecarlo::sample_self_join;
    let freqs = zipf_frequencies(100_000, 500, 1.2).map_err(|e| e.to_string())?;
    for builder in vopt_hist::builders() {
        // The exhaustive serial search is combinatorial in the domain
        // size (Table 1's point); the demo workload skips it.
        if builder.name() == "v_opt_serial_exhaustive" {
            continue;
        }
        let spec = builder.spec(buckets);
        sample_self_join(&freqs, spec, 3, seed, vopt_hist::RoundingMode::Exact)
            .map_err(|e| e.to_string())?;
    }

    // A small end-to-end engine run: ANALYZE populates the catalog
    // (puts), estimation reads it back (hits), and EXPLAIN ANALYZE
    // records per-query Q-error under `<tables>/v_opt_end_biased`.
    let mut eng = engine::Engine::new();
    for (name, total, distinct, skew, s) in [
        ("orders", 20_000u64, 200usize, 1.2f64, seed),
        ("stock", 10_000, 200, 0.8, seed + 1),
    ] {
        let fs = zipf_frequencies(total, distinct, skew).map_err(|e| e.to_string())?;
        let rel = relation_from_frequency_set(name, "part", &fs, s).map_err(|e| e.to_string())?;
        eng.register(rel);
    }
    eng.analyze_all(buckets).map_err(|e| e.to_string())?;
    for sql in [
        "SELECT COUNT(*) FROM orders WHERE orders.part = 0",
        "SELECT COUNT(*) FROM orders, stock WHERE orders.part = stock.part",
    ] {
        let q = eng.parse(sql).map_err(|e| e.to_string())?;
        eng.explain_analyze(&q).map_err(|e| e.to_string())?;
    }
    // One lookup of statistics that were never collected, so the miss
    // counter is exercised alongside the hits.
    let _ = eng
        .catalog()
        .get(&relstore::catalog::StatKey::new("unanalyzed", &["value"]));

    match format {
        "json" => outln!("{}", obs::export::json()),
        _ => emit(format_args!("{}", obs::export::prometheus()), false)?,
    }
    Ok(())
}

/// Opens the journaled catalog under `--data-dir`, registers every
/// column of the given tables with the maintenance daemon, runs a
/// bounded number of sweeps on the real daemon thread, then prints the
/// deterministic event trace and the store's durability state.
///
/// `--sweeps` bounds the run so `serve` is scriptable and testable; a
/// long-lived deployment would simply skip the stop. Because the daemon
/// drains its command channel in order, all requested sweeps complete
/// before the stop command is observed — no sleeps needed.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use relstore::{Daemon, DaemonConfig, DaemonCore, DaemonEvent, DurableCatalog};
    use std::sync::Arc;

    let dir = required(flags, "data-dir")?;
    let tables = required(flags, "tables")?;
    let sweeps: u64 = flags
        .get("sweeps")
        .map(|s| parse_num(s, "sweeps"))
        .transpose()?
        .unwrap_or(3);
    // Default tick interval is effectively "manual sweeps only" so the
    // bounded run's trace is deterministic; pass a small --tick-ms to
    // let the timer drive extra sweeps.
    let tick_ms: u64 = flags
        .get("tick-ms")
        .map(|s| parse_num(s, "tick-ms"))
        .transpose()?
        .unwrap_or(3_600_000);
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let spec = class_spec(flags, buckets)?;
    let mut config = DaemonConfig {
        jitter_seed: flags
            .get("jitter-seed")
            .map(|s| parse_num(s, "jitter-seed"))
            .transpose()?
            .unwrap_or(0),
        ..DaemonConfig::default()
    };
    if let Some(bytes) = flags.get("compact-bytes") {
        config.compaction_bytes = parse_num(bytes, "compact-bytes")?;
    }

    obs::register_well_known();

    let store = Arc::new(DurableCatalog::open(dir).map_err(|e| e.to_string())?);
    let mut core = DaemonCore::new(config);
    let mut columns = 0usize;
    let mut table_count = 0usize;
    for entry in tables.split(',') {
        let (name, path) = entry
            .split_once('=')
            .ok_or_else(|| format!("--tables entry '{entry}' is not name=file.csv"))?;
        let relation = Arc::new(read_csv(path.trim(), name.trim())?);
        table_count += 1;
        for col in relation.schema().columns() {
            core.register_with_spec(Arc::clone(&relation), col.name.clone(), spec);
            columns += 1;
        }
    }

    let daemon = Daemon::spawn(
        core,
        Arc::clone(&store),
        std::time::Duration::from_millis(tick_ms),
    );
    for _ in 0..sweeps {
        daemon.sweep_now();
    }
    let core = daemon.stop();

    outln!(
        "served {dir}: {} sweep(s) over {columns} column(s) across {table_count} table(s)",
        core.now()
    );
    for event in core.trace() {
        match event {
            DaemonEvent::Refreshed { column, tick } => {
                outln!("  tick {tick}: refreshed {column}");
            }
            DaemonEvent::RefreshFailed {
                column,
                tick,
                error,
                retry_at,
            } => {
                outln!(
                    "  tick {tick}: refresh of {column} failed ({error}); retry at tick {retry_at}"
                );
            }
            DaemonEvent::BreakerOpened {
                column,
                tick,
                until,
            } => {
                outln!("  tick {tick}: breaker opened for {column} until tick {until}");
            }
            DaemonEvent::BreakerHalfOpen { column, tick } => {
                outln!("  tick {tick}: breaker half-open for {column}");
            }
            DaemonEvent::BreakerClosed { column, tick } => {
                outln!("  tick {tick}: breaker closed for {column}");
            }
            DaemonEvent::Compacted {
                tick,
                journal_bytes,
            } => {
                outln!("  tick {tick}: compacted journal ({journal_bytes} bytes)");
            }
            DaemonEvent::CompactionFailed { tick, error } => {
                outln!("  tick {tick}: compaction failed ({error})");
            }
        }
    }
    let (closed, open, half_open) = core.breaker_counts();
    outln!("breakers: {closed} closed, {open} open, {half_open} half-open");
    outln!(
        "journal: {} bytes, snapshot generation {}",
        store.journal_bytes(),
        store.generation()
    );
    Ok(())
}

/// Read-only crash recovery: replays the newest checksum-valid snapshot
/// plus the journal tail under `--data-dir` (truncating at the first
/// torn record) and prints what survived, without modifying the
/// directory.
fn cmd_recover(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = required(flags, "data-dir")?;
    let catalog =
        relstore::Catalog::recover(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    let mut one_d = catalog.snapshot_1d();
    one_d.sort_by(|a, b| (&a.0.relation, &a.0.columns).cmp(&(&b.0.relation, &b.0.columns)));
    let mut two_d = catalog.snapshot_2d();
    two_d.sort_by(|a, b| (&a.0.relation, &a.0.columns).cmp(&(&b.0.relation, &b.0.columns)));
    outln!(
        "recovered {dir}: {} column histogram(s), {} joint histogram(s)",
        one_d.len(),
        two_d.len()
    );
    for (key, hist, spec) in &one_d {
        outln!(
            "  {}({}): {} buckets, {} catalog entries, class {}, staleness {}",
            key.relation,
            key.columns.join(", "),
            hist.num_buckets(),
            hist.storage_entries(),
            spec.as_ref().map_or("unrecorded", |s| s.name()),
            catalog.staleness(key).unwrap_or(0)
        );
    }
    for (key, _, spec) in &two_d {
        outln!(
            "  joint {}({}): class {}",
            key.relation,
            key.columns.join(", "),
            spec.as_ref().map_or("unrecorded", |s| s.name())
        );
    }
    for (relation, updates) in catalog.version_snapshot() {
        outln!("  updates since last checkpoint: {relation} = {updates}");
    }
    Ok(())
}

/// Runs the oracle selftest: seed-deterministic differential checks of
/// the paper's theorems plus fault-injection scenarios, reported as JSON
/// on stdout. The report is byte-identical across runs with the same
/// seed and budget, so CI can diff it. Any violation — including a
/// check that silently did not run — exits nonzero.
fn cmd_selftest(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(1);
    let budget_ms: u64 = flags
        .get("budget-ms")
        .map(|s| parse_num(s, "budget-ms"))
        .transpose()?
        .unwrap_or(30_000);

    if let Some(path) = flags.get("snapshot") {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        let entries =
            oracle::verify_snapshot(bytes.into()).map_err(|e| format!("snapshot {path}: {e}"))?;
        eprintln!("histctl: snapshot {path} verified ({entries} catalog entries)");
    }
    if let Some(path) = flags.get("emit-snapshot") {
        let snap = oracle::reference_snapshot(seed)?;
        std::fs::write(path, snap.to_vec()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("histctl: wrote reference snapshot for seed {seed} to {path}");
    }

    let report = oracle::run(seed, budget_ms);
    outln!("{}", report.to_json());
    if report.passed {
        Ok(())
    } else {
        Err(format!(
            "selftest failed with {} violation(s); first: {}",
            report.violations.len(),
            report
                .violations
                .first()
                .map_or("<none recorded>", |v| v.as_str())
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = parse_flags(rest).and_then(|flags| match command.as_str() {
        "generate" => cmd_generate(&flags),
        "analyze" => cmd_analyze(&flags),
        "inspect" => cmd_inspect(&flags),
        "estimate-eq" => cmd_estimate_eq(&flags),
        "estimate-join" => cmd_estimate_join(&flags),
        "query" => cmd_query(&flags),
        "metrics" => cmd_metrics(&flags),
        "serve" => cmd_serve(&flags),
        "recover" => cmd_recover(&flags),
        "selftest" => cmd_selftest(&flags),
        "-h" | "--help" | "help" => {
            outln!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("histctl: {e}");
            ExitCode::from(2)
        }
    }
}
