//! `histctl` — a small command-line tool around the histogram library:
//! generate synthetic relations as CSV, ANALYZE a column into a binary
//! catalog histogram, inspect it, and estimate selection/join sizes —
//! the end-to-end workflow a DBA would drive.
//!
//! ```text
//! histctl generate --rows 10000 --distinct 500 --skew 1.2 --out orders.csv
//! histctl analyze  --input orders.csv --column part --buckets 10 --out orders.voh
//! histctl analyze  --input orders.csv --column part --buckets 10 \
//!                  --class max_diff --out orders.voh
//! histctl inspect  --hist orders.voh
//! histctl estimate-eq   --hist orders.voh --value 42
//! histctl estimate-join --left orders.voh --right stock.voh --domain 500
//! histctl metrics --format prometheus
//! histctl trace --out run.jsonl
//! histctl top --by max-q
//! ```
//!
//! Every error path prints to stderr and exits nonzero; stdout carries
//! only the command's payload, so output can be piped safely.

use freqdist::zipf::zipf_frequencies;
use query::estimate::{estimate_equality, estimate_two_way_join};
use relstore::codec::{decode_histogram, encode_histogram};
use relstore::generate::relation_from_frequency_set;
use relstore::stats::frequency_table;
use relstore::{Relation, StoredHistogram};
use std::collections::HashMap;
use std::process::ExitCode;
use vopt_hist::BuilderSpec;

const USAGE: &str = "usage: histctl <command> [--flag value]...
commands:
  generate      --rows N --distinct M --skew Z --out FILE.csv [--column NAME] [--seed S]
  analyze       --input FILE.csv --column NAME --buckets B --out FILE.voh [--class CLASS]
  inspect       --hist FILE.voh
  estimate-eq   --hist FILE.voh --value V
  estimate-join --left A.voh --right B.voh --domain MAX_VALUE
  query         --sql QUERY --tables name=a.csv,name2=b.csv [--buckets B] [--class CLASS]
                (executes COUNT(*) exactly and prints the histogram estimate)
  metrics       [--format prometheus|json] [--buckets B] [--seed S]
                (runs a demo workload and prints the observability snapshot:
                 catalog hit/miss counters, per-class construction latency,
                 span timings, and per-histogram Q-error aggregates)
  trace         --out FILE [--format jsonl|chrome] [--buckets B] [--seed S]
                (runs the metrics demo workload with the flight recorder
                 on and dumps the recorded provenance events: span
                 open/close, cache probes, ladder rungs, statistics
                 resolutions, drift crossings. jsonl is the
                 histctl-trace-v1 line format; chrome loads directly in
                 chrome://tracing or Perfetto)
  top           [--by geo-q|max-q|drift] [--limit N] [--buckets B] [--seed S]
                (runs the demo workload and ranks the worst columns by
                 the quality monitor's per-column Q-error aggregates)
  serve         --data-dir DIR --tables name=a.csv,name2=b.csv
                [--sweeps N] [--tick-ms MS] [--buckets B] [--class CLASS]
                [--jitter-seed S] [--compact-bytes BYTES] [--self-tune]
                (runs the crash-safe statistics service: opens the
                 journaled catalog in DIR, registers every column of the
                 given tables with the maintenance daemon, performs N
                 bounded sweeps, and prints the daemon's event trace plus
                 journal/breaker state. --self-tune closes the feedback
                 loop: each sweep also consumes the newest per-column
                 (estimate, actual) quality observation and applies a
                 bounded, journaled histogram adjustment)
  tune          --data-dir DIR (--status |
                 --table T --column C --estimate E --actual A)
                (feedback tuning against the journaled catalog in DIR.
                 --status lists every column with the number of tune
                 steps applied since its last full build; the apply form
                 feeds one (estimate, actual) observation through the
                 same journaled path the daemon's sweep uses and prints
                 the applied delta or the skip reason)
  tune          --convergence [--seed S] [--budget-ms MS] [--rounds K]
                [--json]
                (runs the oracle's feedback convergence study — the
                 data behind the feedback_converges selftest invariant:
                 histograms built on drifted data are tuned from query
                 feedback for K rounds and the per-round Q-error
                 trajectory is printed, as deterministic JSON with
                 --json. Same flags, byte-identical output)
  serve         --listen HOST:PORT --tenants DIR
                [--max-conns N] [--queue-depth N] [--allow-remote-shutdown]
                [--read-timeout-ms MS] [--write-timeout-ms MS]
                (runs the networked multi-tenant statistics server:
                 binds the VOHW frame protocol on HOST:PORT — port 0
                 picks an ephemeral port, printed on the first stdout
                 line — and gives every tenant its own journaled
                 catalog, maintenance daemon, and admission queue under
                 DIR. Runs until a client sends SHUTDOWN or the process
                 gets SIGINT/SIGTERM; either path checkpoints every
                 tenant. SHUTDOWN is unauthenticated, so non-loopback
                 listeners refuse it unless --allow-remote-shutdown is
                 given. The deadlines default to 30000 ms each and bound
                 how long a connection may sit idle, dribble a partial
                 frame, or stall a response write before it is closed
                 with a typed DEADLINE error; 0 disables a deadline)
  client        --addr HOST:PORT --op OP [--tenant T] [--sql QUERY]
                [--table name=file.csv] [--class CLASS] [--buckets B]
                [--retries N]
                (one request against a running serve --listen server.
                 OP is ping, load (--tenant --table), analyze (--tenant
                 [--class] [--buckets]), estimate (--tenant --sql),
                 epoch (--tenant), metrics, or shutdown. --retries
                 turns on the fault-tolerant client: N extra attempts
                 with seeded exponential backoff, reconnecting and
                 replaying idempotent ops — load is replayed only when
                 the failure struck before any bytes reached the server)
  chaos         --upstream HOST:PORT [--listen HOST:PORT] [--seed S]
                (runs the deterministic chaos proxy in front of a
                 serve --listen server: each accepted connection draws
                 a seeded fate — clean, reset, drop-request,
                 truncate-response, or delay — and every third
                 connection is forced clean so retrying clients always
                 converge. The first stdout line reports the bound
                 address; the proxy runs until SIGINT/SIGTERM)
  recover       --data-dir DIR
                (replays the newest valid snapshot plus journal tail in
                 DIR read-only and prints what survived)
  selftest      [--seed S] [--budget-ms MS] [--emit-snapshot FILE] [--snapshot FILE]
                (runs the oracle: differential checks of every histogram
                 class against brute-force ground truth plus fault
                 injection — including the crash-recovery kill-point
                 matrix; prints a deterministic JSON report and exits
                 nonzero on any violation. --emit-snapshot writes the
                 seed's reference catalog; --snapshot verifies one first)
  bench         [--threads LIST] [--duration-ms D | --ops N]
                [--workload selfjoin|chain|range] [--remote HOST:PORT]
                [--retries N] [--seed S] [--buckets B] [--class CLASS]
                [--json] [--out FILE.json]
                (closed-loop estimation load harness: T concurrent
                 threads drive cached estimates over an oracle-generated
                 query pool while the maintenance daemon churns the
                 catalog with ANALYZE refreshes; reports throughput,
                 p50/p99 latency from the obs log2 histograms, cache hit
                 rate, and the cached-vs-uncached single-lookup speedup.
                 --threads takes a comma list ('1,2,4'); --ops runs a
                 fixed per-thread operation count whose result digest is
                 byte-identical across reruns with the same --seed.
                 --workload range mixes point, comparison, BETWEEN, and
                 band-join queries through the cache. --remote drives
                 the identical query stream over the wire against a
                 serve --listen server instead of in-process: the
                 report gains \"transport\":\"remote\" and its digests
                 are bit-identical to the in-process run with the same
                 seed — the serving layer adds latency, never error.
                 --retries N arms the fault-tolerant client on every
                 remote connection, so the bench converges even through
                 the chaos proxy; remote reports also record the
                 TCP_NODELAY on/off single-op round-trip medians)

CLASS names a registered histogram builder (default v_opt_end_biased),
optionally with an explicit budget: 'max_diff', 'equi_depth:20', or
'end_biased:H,L' for an explicit high/low split.

Every command additionally accepts --trace-out FILE
[--trace-format jsonl|chrome]: after the command finishes, the flight
recorder's buffered provenance events are dumped to FILE.";

/// Writes payload to stdout. A reader that closes the pipe early
/// (`histctl inspect ... | head`) ends the process quietly instead of
/// panicking; any other stdout failure surfaces as a normal error.
fn emit(args: std::fmt::Arguments<'_>, newline: bool) -> Result<(), String> {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let result = out
        .write_fmt(args)
        .and_then(|()| {
            if newline {
                out.write_all(b"\n")
            } else {
                Ok(())
            }
        })
        .and_then(|()| out.flush());
    match result {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(format!("stdout: {e}")),
    }
}

macro_rules! outln {
    ($($arg:tt)*) => {
        emit(format_args!($($arg)*), true)?
    };
}

/// Flags that are pure switches: present or absent, no value token.
const BOOLEAN_FLAGS: &[&str] = &[
    "json",
    "allow-remote-shutdown",
    "status",
    "self-tune",
    "convergence",
];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got '{flag}'"))?;
        if BOOLEAN_FLAGS.contains(&name) {
            flags.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
    }
    Ok(flags)
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags
        .get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}\n{USAGE}"))
}

fn parse_num<T: std::str::FromStr>(value: &str, name: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("--{name}: cannot parse '{value}'"))
}

/// Resolves the optional `--class` flag against the builder registry.
/// Unknown names surface the registry's own error, which lists every
/// valid spelling.
fn class_spec(flags: &HashMap<String, String>, buckets: usize) -> Result<BuilderSpec, String> {
    let class = flags
        .get("class")
        .map(String::as_str)
        .unwrap_or("v_opt_end_biased");
    BuilderSpec::parse(class, buckets).map_err(|e| e.to_string())
}

/// Writes a relation as CSV via `relstore::csv`.
fn write_csv(relation: &Relation, path: &str) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    relstore::csv::write_csv(relation, file).map_err(|e| e.to_string())
}

/// Reads a CSV relation via `relstore::csv`.
fn read_csv(path: &str, name: &str) -> Result<Relation, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("read {path}: {e}"))?;
    relstore::csv::read_csv(std::io::BufReader::new(file), name).map_err(|e| format!("{path}: {e}"))
}

fn load_histogram(path: &str) -> Result<StoredHistogram, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    decode_histogram(bytes.into()).map_err(|e| e.to_string())
}

/// SIGINT/SIGTERM turn into a flag the long-running commands poll, so
/// Ctrl-C runs the same checkpoint-all-tenants path as a wire SHUTDOWN
/// instead of killing the process mid-journal. The workspace keeps
/// `libc` out of the dependency tree, so the handler registers through
/// the C `signal` symbol directly — the only unsafe code in the binary,
/// confined to this module.
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SIGNALED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        // Async-signal-safe: a single atomic store.
        SIGNALED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the flag-setting handler for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        // SAFETY: `signal(2)` with a handler that only stores an atomic
        // is async-signal-safe; both signum values are valid.
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    /// Whether a termination signal has arrived since [`install`].
    pub fn received() -> bool {
        SIGNALED.load(Ordering::SeqCst)
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let rows: u64 = parse_num(required(flags, "rows")?, "rows")?;
    let distinct: usize = parse_num(required(flags, "distinct")?, "distinct")?;
    let skew: f64 = parse_num(required(flags, "skew")?, "skew")?;
    let out = required(flags, "out")?;
    let column = flags.get("column").map(String::as_str).unwrap_or("value");
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(42);
    let freqs = zipf_frequencies(rows, distinct, skew).map_err(|e| e.to_string())?;
    let relation = relation_from_frequency_set("generated", column, &freqs, seed)
        .map_err(|e| e.to_string())?;
    write_csv(&relation, out)?;
    outln!(
        "wrote {} rows over {} distinct values (zipf z={skew}) to {out}",
        relation.num_rows(),
        distinct
    );
    Ok(())
}

fn cmd_analyze(flags: &HashMap<String, String>) -> Result<(), String> {
    let input = required(flags, "input")?;
    let column = required(flags, "column")?;
    let buckets: usize = parse_num(required(flags, "buckets")?, "buckets")?;
    let out = required(flags, "out")?;
    let relation = read_csv(input, "input")?;
    let table = frequency_table(&relation, column).map_err(|e| e.to_string())?;
    if table.freqs.is_empty() {
        return Err(format!("{input}: column '{column}' has no values"));
    }
    let spec = class_spec(flags, buckets)?;
    let opt = spec.build_opt(&table.freqs).map_err(|e| e.to_string())?;
    let stored = StoredHistogram::from_histogram(&table.values, &opt.histogram)
        .map_err(|e| e.to_string())?;
    let bytes = encode_histogram(&stored);
    std::fs::write(out, &bytes).map_err(|e| format!("write {out}: {e}"))?;
    outln!(
        "analyzed {} rows, {} distinct values -> {} {} buckets, {} catalog entries, \
         self-join error {:.1}; wrote {} bytes to {out}",
        relation.num_rows(),
        table.num_values(),
        stored.num_buckets(),
        spec.name(),
        stored.storage_entries(),
        opt.error,
        bytes.len()
    );
    Ok(())
}

fn cmd_inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let hist = load_histogram(required(flags, "hist")?)?;
    outln!(
        "buckets: {}   catalog entries: {}   default bucket: {}",
        hist.num_buckets(),
        hist.storage_entries(),
        hist.default_bucket()
    );
    for (i, &avg) in hist.bucket_avgs().iter().enumerate() {
        let members: Vec<String> = hist
            .exceptions()
            .iter()
            .filter(|&&(_, b)| b as usize == i)
            .map(|&(v, _)| v.to_string())
            .collect();
        if i as u32 == hist.default_bucket() {
            outln!("  bucket {i}: avg {avg}  (all values not listed below)");
        } else {
            outln!("  bucket {i}: avg {avg}  values [{}]", members.join(", "));
        }
    }
    Ok(())
}

fn cmd_estimate_eq(flags: &HashMap<String, String>) -> Result<(), String> {
    let hist = load_histogram(required(flags, "hist")?)?;
    let value: u64 = parse_num(required(flags, "value")?, "value")?;
    outln!("{}", estimate_equality(&hist, value));
    Ok(())
}

fn cmd_estimate_join(flags: &HashMap<String, String>) -> Result<(), String> {
    let left = load_histogram(required(flags, "left")?)?;
    let right = load_histogram(required(flags, "right")?)?;
    let max: u64 = parse_num(required(flags, "domain")?, "domain")?;
    let domain: Vec<u64> = (0..max).collect();
    outln!("{:.0}", estimate_two_way_join(&left, &right, &domain));
    Ok(())
}

fn cmd_query(flags: &HashMap<String, String>) -> Result<(), String> {
    let sql = required(flags, "sql")?;
    let tables = required(flags, "tables")?;
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let spec = class_spec(flags, buckets)?;
    let mut eng = engine::Engine::new();
    for entry in tables.split(',') {
        let (name, path) = entry
            .split_once('=')
            .ok_or_else(|| format!("--tables entry '{entry}' is not name=file.csv"))?;
        let relation = read_csv(path.trim(), name.trim())?;
        eng.register(relation);
    }
    eng.analyze_all_with(spec).map_err(|e| e.to_string())?;
    let query = eng.parse(sql).map_err(|e| e.to_string())?;
    let actual = eng.execute(&query).map_err(|e| e.to_string())?;
    let (estimate, sources) = eng
        .estimate_with_sources(&query)
        .map_err(|e| e.to_string())?;
    let q_err = {
        let a = (actual as f64).max(1.0);
        (estimate.max(1e-9) / a).max(a / estimate.max(1e-9))
    };
    outln!("actual   {actual}");
    // The summary names the predicate forms the estimator actually
    // evaluated (a range-shaped lookup reports its whole predicate, an
    // equality lookup its column), so range vs. equality runs are
    // distinguishable in piped output and provenance traces alike.
    let evaluated = sources
        .iter()
        .map(|s| format!("{} [{}]", s.target, s.rung.name()))
        .collect::<Vec<_>>()
        .join(", ");
    outln!(
        "estimate {estimate:.0}   (class={}, beta={}, q-error {q_err:.2}x)   via {}",
        spec.name(),
        spec.buckets(),
        if evaluated.is_empty() {
            "<no statistics lookups>".to_string()
        } else {
            evaluated
        }
    );
    Ok(())
}

/// Runs the small, seed-deterministic in-process workload behind
/// `metrics`, `trace`, and `top`: one construction per histogram class
/// over a skewed set, then an end-to-end engine run — exercising every
/// instrumented layer (catalog counters, construction latency, spans,
/// the estimation cache, the quality monitor, and the flight recorder).
fn run_demo_workload(buckets: usize, seed: u64) -> Result<(), String> {
    obs::register_well_known();

    // Build every histogram class once over a skewed frequency set: each
    // construction feeds its `construction_seconds{class=...}` latency
    // histogram, and the self-join estimate feeds a `self_join/<class>`
    // Q-error scope.
    use query::montecarlo::sample_self_join;
    let freqs = zipf_frequencies(100_000, 500, 1.2).map_err(|e| e.to_string())?;
    for builder in vopt_hist::builders() {
        // The exhaustive serial search is combinatorial in the domain
        // size (Table 1's point); the demo workload skips it.
        if builder.name() == "v_opt_serial_exhaustive" {
            continue;
        }
        let spec = builder.spec(buckets);
        sample_self_join(&freqs, spec, 3, seed, vopt_hist::RoundingMode::Exact)
            .map_err(|e| e.to_string())?;
    }

    // A small end-to-end engine run: ANALYZE populates the catalog
    // (puts), estimation reads it back (hits), and EXPLAIN ANALYZE
    // records per-query Q-error under `<tables>/v_opt_end_biased`.
    let mut eng = engine::Engine::new();
    for (name, total, distinct, skew, s) in [
        ("orders", 20_000u64, 200usize, 1.2f64, seed),
        ("stock", 10_000, 200, 0.8, seed + 1),
    ] {
        let fs = zipf_frequencies(total, distinct, skew).map_err(|e| e.to_string())?;
        let rel = relation_from_frequency_set(name, "part", &fs, s).map_err(|e| e.to_string())?;
        eng.register(rel);
    }
    eng.analyze_all(buckets).map_err(|e| e.to_string())?;
    for sql in [
        "SELECT COUNT(*) FROM orders WHERE orders.part = 0",
        "SELECT COUNT(*) FROM orders, stock WHERE orders.part = stock.part",
    ] {
        let q = eng.parse(sql).map_err(|e| e.to_string())?;
        eng.explain_analyze(&q).map_err(|e| e.to_string())?;
        // Two cached estimates: the first misses and fills the
        // estimation cache, the second hits — so the cache counters
        // and the recorder's probe events cover both outcomes.
        for _ in 0..2 {
            eng.estimate(&q).map_err(|e| e.to_string())?;
        }
    }
    // One lookup of statistics that were never collected, so the miss
    // counter is exercised alongside the hits.
    let _ = eng
        .catalog()
        .get(&relstore::catalog::StatKey::new("unanalyzed", &["value"]));
    Ok(())
}

/// Prints the observability snapshot after a demo workload. This is the
/// CLI window into `obs`: catalog hit/miss/put counters, one
/// construction-latency histogram per histogram class, span timings,
/// and per-histogram Q-error aggregates from the quality monitor.
fn cmd_metrics(flags: &HashMap<String, String>) -> Result<(), String> {
    let format = flags
        .get("format")
        .map(String::as_str)
        .unwrap_or("prometheus");
    if format != "prometheus" && format != "json" {
        return Err(format!(
            "--format must be 'prometheus' or 'json', got '{format}'"
        ));
    }
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(42);
    run_demo_workload(buckets, seed)?;
    match format {
        "json" => outln!("{}", obs::export::json()),
        _ => emit(format_args!("{}", obs::export::prometheus()), false)?,
    }
    Ok(())
}

/// Drains the flight recorder and writes its events to `path` in the
/// given format. Returns `(events, dropped_total)` for the summary line.
fn write_trace(path: &str, format: &str) -> Result<(usize, u64), String> {
    if format != "jsonl" && format != "chrome" {
        return Err(format!(
            "trace format must be 'jsonl' or 'chrome', got '{format}'"
        ));
    }
    let events = obs::trace::drain();
    let text = match format {
        "chrome" => obs::trace::chrome(&events),
        _ => obs::trace::jsonl(&events),
    };
    std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
    Ok((events.len(), obs::trace::dropped()))
}

/// `histctl trace`: runs the demo workload with the flight recorder on
/// and dumps everything it recorded.
fn cmd_trace(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = required(flags, "out")?;
    let format = flags.get("format").map(String::as_str).unwrap_or("jsonl");
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(42);
    obs::trace::set_trace_enabled(true);
    // Start from an empty recorder so the dump is exactly the demo
    // workload's provenance, not startup noise.
    obs::trace::drain();
    run_demo_workload(buckets, seed)?;
    let (events, dropped) = write_trace(out, format)?;
    outln!("trace: wrote {events} event(s) ({dropped} dropped so far) to {out} ({format})");
    Ok(())
}

/// `histctl top`: runs the demo workload and ranks the worst columns
/// from the quality monitor's per-column (`col:<table>.<column>`)
/// Q-error aggregates.
fn cmd_top(flags: &HashMap<String, String>) -> Result<(), String> {
    let by = flags.get("by").map(String::as_str).unwrap_or("geo-q");
    if !["geo-q", "max-q", "drift"].contains(&by) {
        return Err(format!(
            "--by must be 'geo-q', 'max-q', or 'drift', got '{by}'"
        ));
    }
    let limit: usize = flags
        .get("limit")
        .map(|s| parse_num(s, "limit"))
        .transpose()?
        .unwrap_or(10);
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(42);
    run_demo_workload(buckets, seed)?;

    let mut rows = obs::quality::snapshot_prefixed("col:");
    // Primary key: the chosen metric, worst first. Ties (and the drift
    // ranking's common all-zero case) fall back to EWMA, then to the
    // scope name, so the listing is total-ordered and deterministic.
    rows.sort_by(|(scope_a, a), (scope_b, b)| {
        let metric = |s: &obs::quality::QualitySnapshot| match by {
            "max-q" => s.max_q,
            "drift" => s.drift_events as f64,
            _ => s.geo_mean_q,
        };
        metric(b)
            .total_cmp(&metric(a))
            .then(b.ewma_q.total_cmp(&a.ewma_q))
            .then(scope_a.cmp(scope_b))
    });
    outln!("top columns by {by} (seed {seed}, buckets {buckets}):");
    for (rank, (scope, s)) in rows.iter().take(limit).enumerate() {
        let column = scope.strip_prefix("col:").unwrap_or(scope);
        outln!(
            "  {:>2}. {column:<24} geo-q {:>8.3}x  max-q {:>8.3}x  ewma {:>8.3}x  \
             drift {:>2}  samples {}",
            rank + 1,
            s.geo_mean_q,
            s.max_q,
            s.ewma_q,
            s.drift_events,
            s.count
        );
    }
    Ok(())
}

/// Opens the journaled catalog under `--data-dir`, registers every
/// column of the given tables with the maintenance daemon, runs a
/// bounded number of sweeps on the real daemon thread, then prints the
/// deterministic event trace and the store's durability state.
///
/// `--sweeps` bounds the run so `serve` is scriptable and testable; a
/// long-lived deployment would simply skip the stop. Because the daemon
/// drains its command channel in order, all requested sweeps complete
/// before the stop command is observed — no sleeps needed.
fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    use relstore::{Daemon, DaemonConfig, DaemonCore, DaemonEvent, DurableCatalog};
    use std::sync::Arc;

    // `serve --listen` is the networked multi-tenant form; without it
    // the command keeps its original single-catalog daemon behavior.
    if flags.contains_key("listen") {
        return cmd_serve_net(flags);
    }
    let dir = required(flags, "data-dir")?;
    let tables = required(flags, "tables")?;
    let sweeps: u64 = flags
        .get("sweeps")
        .map(|s| parse_num(s, "sweeps"))
        .transpose()?
        .unwrap_or(3);
    // Default tick interval is effectively "manual sweeps only" so the
    // bounded run's trace is deterministic; pass a small --tick-ms to
    // let the timer drive extra sweeps.
    let tick_ms: u64 = flags
        .get("tick-ms")
        .map(|s| parse_num(s, "tick-ms"))
        .transpose()?
        .unwrap_or(3_600_000);
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let spec = class_spec(flags, buckets)?;
    let mut config = DaemonConfig {
        jitter_seed: flags
            .get("jitter-seed")
            .map(|s| parse_num(s, "jitter-seed"))
            .transpose()?
            .unwrap_or(0),
        ..DaemonConfig::default()
    };
    if let Some(bytes) = flags.get("compact-bytes") {
        config.compaction_bytes = parse_num(bytes, "compact-bytes")?;
    }
    if flags.contains_key("self-tune") {
        config.self_tune = true;
    }

    obs::register_well_known();

    let store = Arc::new(DurableCatalog::open(dir).map_err(|e| e.to_string())?);
    let mut core = DaemonCore::new(config);
    let mut columns = 0usize;
    let mut table_count = 0usize;
    for entry in tables.split(',') {
        let (name, path) = entry
            .split_once('=')
            .ok_or_else(|| format!("--tables entry '{entry}' is not name=file.csv"))?;
        let relation = Arc::new(read_csv(path.trim(), name.trim())?);
        table_count += 1;
        for col in relation.schema().columns() {
            core.register_with_spec(Arc::clone(&relation), col.name.clone(), spec);
            columns += 1;
        }
    }

    let daemon = Daemon::spawn(
        core,
        Arc::clone(&store),
        std::time::Duration::from_millis(tick_ms),
    );
    for _ in 0..sweeps {
        daemon.sweep_now();
    }
    let core = daemon.stop();

    outln!(
        "served {dir}: {} sweep(s) over {columns} column(s) across {table_count} table(s)",
        core.now()
    );
    for event in core.trace() {
        match event {
            DaemonEvent::Refreshed { column, tick } => {
                outln!("  tick {tick}: refreshed {column}");
            }
            DaemonEvent::RefreshFailed {
                column,
                tick,
                error,
                retry_at,
            } => {
                outln!(
                    "  tick {tick}: refresh of {column} failed ({error}); retry at tick {retry_at}"
                );
            }
            DaemonEvent::BreakerOpened {
                column,
                tick,
                until,
            } => {
                outln!("  tick {tick}: breaker opened for {column} until tick {until}");
            }
            DaemonEvent::BreakerHalfOpen { column, tick } => {
                outln!("  tick {tick}: breaker half-open for {column}");
            }
            DaemonEvent::BreakerClosed { column, tick } => {
                outln!("  tick {tick}: breaker closed for {column}");
            }
            DaemonEvent::Compacted {
                tick,
                journal_bytes,
            } => {
                outln!("  tick {tick}: compacted journal ({journal_bytes} bytes)");
            }
            DaemonEvent::CompactionFailed { tick, error } => {
                outln!("  tick {tick}: compaction failed ({error})");
            }
            DaemonEvent::Tuned { column, tick } => {
                outln!("  tick {tick}: tuned {column} from feedback");
            }
            DaemonEvent::TuneSkipped {
                column,
                tick,
                reason,
            } => {
                outln!("  tick {tick}: tune of {column} skipped ({reason})");
            }
            DaemonEvent::TuneFailed {
                column,
                tick,
                error,
            } => {
                outln!("  tick {tick}: tune of {column} failed ({error})");
            }
        }
    }
    let (closed, open, half_open) = core.breaker_counts();
    outln!("breakers: {closed} closed, {open} open, {half_open} half-open");
    outln!(
        "journal: {} bytes, snapshot generation {}",
        store.journal_bytes(),
        store.generation()
    );
    Ok(())
}

/// `histctl tune`: the feedback loop's command-line surface. With
/// `--status` it reports, for every column in the journaled catalog,
/// how many tune steps have been applied since the column's last full
/// build — the same divergence signal the provenance trail's `tuned`
/// marker exposes per estimate. With `--table/--column/--estimate/
/// --actual` it feeds a single observation through
/// [`relstore::DurableCatalog::tune_column`], the identical journaled
/// path the maintenance daemon's sweep uses, and prints what happened.
/// With `--convergence` it runs the oracle's drifted-workload
/// convergence study ([`oracle::feedback_trajectories`] — the data
/// behind the `feedback_converges` invariant) and emits it as
/// deterministic JSON, so the convergence claim is reproducible from
/// the command line.
fn cmd_tune(flags: &HashMap<String, String>) -> Result<(), String> {
    use relstore::catalog::StatKey;
    use relstore::DurableCatalog;

    if flags.contains_key("convergence") {
        return cmd_tune_convergence(flags);
    }
    let dir = required(flags, "data-dir")?;
    let store = DurableCatalog::open(dir).map_err(|e| e.to_string())?;
    if flags.contains_key("status") {
        let mut keys = store.catalog().keys();
        keys.sort_by_key(|k| k.display());
        outln!("tuning status for {dir}: {} column(s)", keys.len());
        for key in keys {
            let tunes = store.catalog().tuned_count(&key);
            let staleness = store.catalog().staleness(&key).unwrap_or(0);
            outln!(
                "  {:<30} tuned {} time(s) since last build, staleness {}",
                key.display(),
                tunes,
                staleness
            );
        }
        return Ok(());
    }
    let table = required(flags, "table")?;
    let column = required(flags, "column")?;
    let estimate: f64 = parse_num(required(flags, "estimate")?, "estimate")?;
    let actual: f64 = parse_num(required(flags, "actual")?, "actual")?;
    let key = StatKey::new(table, &[column]);
    let cfg = vopt_hist::feedback::TuneConfig::default();
    match store
        .tune_column(&key, estimate, actual, &cfg)
        .map_err(|e| e.to_string())?
    {
        Ok(report) => {
            outln!(
                "tuned {}: moved {} tuple(s), Q-error {:.4} -> {:.4}{}",
                key.display(),
                report.mass_moved,
                report.qerror_pre,
                report.qerror_post,
                if report.restructured {
                    " (restructured)"
                } else {
                    ""
                }
            );
            outln!(
                "  tuned {} time(s) since last build",
                store.catalog().tuned_count(&key)
            );
        }
        Err(skip) => {
            outln!("tune of {} skipped ({})", key.display(), skip.reason());
        }
    }
    Ok(())
}

/// `histctl tune --convergence [--seed S] [--budget-ms MS] [--rounds K]
/// [--json]`: runs the oracle's feedback convergence study and prints
/// either a human-readable trajectory table or a deterministic JSON
/// artifact (schema `histctl-tune-v1`). Everything is derived from
/// `(seed, tier, rounds)` — no wall clock — so two runs with the same
/// flags produce byte-identical output.
fn cmd_tune_convergence(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(1);
    let budget_ms: u64 = flags
        .get("budget-ms")
        .map(|s| parse_num(s, "budget-ms"))
        .transpose()?
        .unwrap_or(30_000);
    let rounds: usize = flags
        .get("rounds")
        .map(|s| parse_num(s, "rounds"))
        .transpose()?
        .unwrap_or(8);
    if rounds == 0 {
        return Err("--rounds must be at least 1".into());
    }
    let tier = oracle::Tier::from_budget_ms(budget_ms);
    let workload = oracle::Workload::generate(seed, tier);
    let (trajectories, errors) = oracle::feedback_trajectories(&workload, rounds);
    if !errors.is_empty() {
        return Err(format!(
            "convergence study hit {} error(s); first: {}",
            errors.len(),
            errors[0]
        ));
    }
    if trajectories.is_empty() {
        return Err("convergence study produced no trajectories".into());
    }
    let medians = oracle::feedback_round_medians(&trajectories);
    let fresh_median = {
        let mut qs: Vec<f64> = trajectories.iter().map(|t| t.fresh_q).collect();
        qs.sort_by(f64::total_cmp);
        let mid = qs.len() / 2;
        if qs.len() % 2 == 1 {
            qs[mid]
        } else {
            (qs[mid - 1] + qs[mid]) / 2.0
        }
    };
    let fmt_list = |qs: &[f64]| {
        qs.iter()
            .map(|q| format!("{q:.6}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    if flags.contains_key("json") {
        let tier_name = format!("{tier:?}").to_ascii_lowercase();
        let sets = trajectories
            .iter()
            .map(|t| {
                format!(
                    "    {{\"set\": \"{}\", \"qerrors\": [{}], \"fresh_qerror\": {:.6}, \
                     \"tunes_applied\": {}}}",
                    t.set,
                    fmt_list(&t.qs),
                    t.fresh_q,
                    t.applied
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        outln!("{{");
        outln!("  \"schema\": \"histctl-tune-v1\",");
        outln!("  \"seed\": {seed},");
        outln!("  \"tier\": \"{tier_name}\",");
        outln!("  \"rounds\": {rounds},");
        outln!("  \"sets\": [");
        outln!("{sets}");
        outln!("  ],");
        outln!("  \"median_qerror_per_round\": [{}],", fmt_list(&medians));
        outln!("  \"fresh_median_qerror\": {fresh_median:.6},");
        outln!(
            "  \"median_improvement\": {:.6}",
            medians[0] / medians[rounds].max(1e-12)
        );
        outln!("}}");
    } else {
        outln!(
            "feedback convergence (seed {seed}, {tier:?} tier, {} set(s), {rounds} round(s)):",
            trajectories.len()
        );
        for t in &trajectories {
            outln!(
                "  {:<22} Q-error {:.4} -> {:.4} ({} tune(s), fresh {:.4})",
                t.set,
                t.qs[0],
                t.qs[rounds],
                t.applied,
                t.fresh_q
            );
        }
        outln!("  median per round: {}", fmt_list(&medians));
        outln!(
            "  median Q-error {:.4} -> {:.4} ({:.2}x better; ANALYZE-fresh median {:.4})",
            medians[0],
            medians[rounds],
            medians[0] / medians[rounds].max(1e-12),
            fresh_median
        );
    }
    Ok(())
}

/// `histctl serve --listen HOST:PORT --tenants DIR`: the networked
/// multi-tenant statistics server. Binds the VOHW frame protocol,
/// gives every tenant its own journaled catalog and maintenance daemon
/// under DIR, and runs until a client sends SHUTDOWN — which
/// checkpoints every tenant before the process exits. The first stdout
/// line reports the *bound* address, so scripts can pass port 0 and
/// parse the ephemeral port the kernel picked.
fn cmd_serve_net(flags: &HashMap<String, String>) -> Result<(), String> {
    let listen = required(flags, "listen")?;
    let tenants = required(flags, "tenants")?;
    let max_connections: usize = flags
        .get("max-conns")
        .map(|s| parse_num(s, "max-conns"))
        .transpose()?
        .unwrap_or(64);
    let queue_depth: usize = flags
        .get("queue-depth")
        .map(|s| parse_num(s, "queue-depth"))
        .transpose()?
        .unwrap_or(64);
    // Connection deadlines default on (30 s): a slow-loris client that
    // dribbles half a frame must not hold an admission slot forever.
    // `0` disables a deadline for debugger-friendly sessions.
    let deadline = |flag: &str| -> Result<Option<std::time::Duration>, String> {
        let ms: u64 = flags
            .get(flag)
            .map(|s| parse_num(s, flag))
            .transpose()?
            .unwrap_or(30_000);
        Ok((ms > 0).then(|| std::time::Duration::from_millis(ms)))
    };
    let read_timeout = deadline("read-timeout-ms")?;
    let write_timeout = deadline("write-timeout-ms")?;
    obs::register_well_known();
    let server = netserve::Server::start(netserve::ServerConfig {
        listen: listen.to_string(),
        tenants_dir: std::path::PathBuf::from(tenants),
        max_connections,
        queue_depth,
        allow_remote_shutdown: flags.contains_key("allow-remote-shutdown"),
        read_timeout,
        write_timeout,
        ..netserve::ServerConfig::default()
    })
    .map_err(|e| format!("bind {listen}: {e}"))?;
    let timeout_ms = |t: Option<std::time::Duration>| match t {
        Some(d) => format!("{}ms", d.as_millis()),
        None => "off".to_string(),
    };
    outln!(
        "serving on {} (tenants in {tenants}, max {max_connections} connection(s), \
         queue depth {queue_depth}, read/write deadlines {}/{})",
        server.local_addr(),
        timeout_ms(read_timeout),
        timeout_ms(write_timeout)
    );
    // SIGINT/SIGTERM run the same graceful path as a wire SHUTDOWN:
    // flip the stop flag, drain connections, checkpoint every tenant.
    signals::install();
    while !server.stopping() && !signals::received() {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    if signals::received() {
        server.shutdown();
    }
    let checkpointed = server.join().map_err(|e| e.to_string())?;
    outln!("shutdown: checkpointed {checkpointed} tenant(s)");
    Ok(())
}

/// `histctl chaos`: the deterministic chaos proxy as a standalone
/// process, for CI gates and manual fault drills. Prints the bound
/// address on the first stdout line (pass --listen port 0 for an
/// ephemeral port) and forwards to --upstream until SIGINT/SIGTERM.
fn cmd_chaos(flags: &HashMap<String, String>) -> Result<(), String> {
    let upstream = required(flags, "upstream")?;
    let listen = flags
        .get("listen")
        .map(String::as_str)
        .unwrap_or("127.0.0.1:0");
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(0xc4a0_5150);
    let proxy = netserve::ChaosProxy::start(netserve::ChaosConfig {
        listen: listen.to_string(),
        upstream: upstream.to_string(),
        seed,
    })
    .map_err(|e| format!("bind {listen}: {e}"))?;
    outln!(
        "chaos proxy on {} (upstream {upstream}, seed {seed})",
        proxy.local_addr()
    );
    signals::install();
    while !signals::received() {
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    proxy.stop();
    outln!("chaos proxy stopped");
    Ok(())
}

/// `histctl client`: one typed request against a running
/// `serve --listen` server. Payloads go to stdout (pipe-safe); errors —
/// including typed remote errors and OVERLOADED backpressure — exit
/// nonzero through the normal stderr path.
fn cmd_client(flags: &HashMap<String, String>) -> Result<(), String> {
    let addr = required(flags, "addr")?;
    let op = required(flags, "op")?;
    // Resolve every op-specific flag (and parse the CSV for `load`)
    // before dialing, so usage errors don't depend on a live server.
    if ![
        "ping", "load", "analyze", "estimate", "epoch", "metrics", "shutdown",
    ]
    .contains(&op)
    {
        return Err(format!(
            "--op must be ping|load|analyze|estimate|epoch|metrics|shutdown, got '{op}'"
        ));
    }
    let tenant = if matches!(op, "load" | "analyze" | "estimate" | "epoch") {
        required(flags, "tenant")?
    } else {
        ""
    };
    let sql = if op == "estimate" {
        required(flags, "sql")?
    } else {
        ""
    };
    let relation = if op == "load" {
        let table = required(flags, "table")?;
        let (name, path) = table
            .split_once('=')
            .ok_or_else(|| format!("--table entry '{table}' is not name=file.csv"))?;
        Some(read_csv(path.trim(), name.trim())?)
    } else {
        None
    };

    // --retries arms the fault-tolerant client: the dial and every
    // idempotent op get N extra attempts with seeded backoff. With the
    // default of 0 the behavior is the original single-shot client.
    let retries: u32 = flags
        .get("retries")
        .map(|s| parse_num(s, "retries"))
        .transpose()?
        .unwrap_or(0);
    let mut client =
        netserve::Client::connect_with_retry(addr, netserve::RetryPolicy::with_retries(retries))
            .map_err(|e| format!("connect {addr}: {e}"))?;
    match op {
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            outln!("pong");
        }
        "load" => {
            let relation = relation.expect("load resolved its table above");
            let rows = client
                .load_relation(tenant, &relation)
                .map_err(|e| e.to_string())?;
            outln!("loaded {rows} row(s) into {tenant}/{}", relation.name());
        }
        "analyze" => {
            let buckets: u32 = flags
                .get("buckets")
                .map(|b| parse_num(b, "buckets"))
                .transpose()?
                .unwrap_or(10);
            let class = flags
                .get("class")
                .map(String::as_str)
                .unwrap_or("v_opt_end_biased");
            let (histograms, epoch) = client
                .analyze(tenant, class, buckets)
                .map_err(|e| e.to_string())?;
            outln!("analyzed {tenant}: {histograms} histogram(s), epoch {epoch}");
        }
        "estimate" => {
            let (estimate, sources) = client.estimate(tenant, sql).map_err(|e| e.to_string())?;
            let via = sources
                .iter()
                .map(|s| format!("{} [{}]", s.target, s.rung.name()))
                .collect::<Vec<_>>()
                .join(", ");
            outln!(
                "estimate {estimate:.0}   via {}",
                if via.is_empty() {
                    "<no statistics lookups>".to_string()
                } else {
                    via
                }
            );
        }
        "epoch" => {
            outln!("{}", client.epoch(tenant).map_err(|e| e.to_string())?);
        }
        "metrics" => {
            emit(
                format_args!("{}", client.metrics().map_err(|e| e.to_string())?),
                false,
            )?;
        }
        _ => {
            client.shutdown().map_err(|e| e.to_string())?;
            outln!("shutdown requested");
        }
    }
    Ok(())
}

/// Read-only crash recovery: replays the newest checksum-valid snapshot
/// plus the journal tail under `--data-dir` (truncating at the first
/// torn record) and prints what survived, without modifying the
/// directory.
fn cmd_recover(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = required(flags, "data-dir")?;
    let catalog =
        relstore::Catalog::recover(std::path::Path::new(dir)).map_err(|e| e.to_string())?;
    let mut one_d = catalog.snapshot_1d();
    one_d.sort_by(|a, b| (&a.0.relation, &a.0.columns).cmp(&(&b.0.relation, &b.0.columns)));
    let mut two_d = catalog.snapshot_2d();
    two_d.sort_by(|a, b| (&a.0.relation, &a.0.columns).cmp(&(&b.0.relation, &b.0.columns)));
    outln!(
        "recovered {dir}: {} column histogram(s), {} joint histogram(s)",
        one_d.len(),
        two_d.len()
    );
    for (key, hist, spec) in &one_d {
        outln!(
            "  {}({}): {} buckets, {} catalog entries, class {}, staleness {}",
            key.relation,
            key.columns.join(", "),
            hist.num_buckets(),
            hist.storage_entries(),
            spec.as_ref().map_or("unrecorded", |s| s.name()),
            catalog.staleness(key).unwrap_or(0)
        );
    }
    for (key, _, spec) in &two_d {
        outln!(
            "  joint {}({}): class {}",
            key.relation,
            key.columns.join(", "),
            spec.as_ref().map_or("unrecorded", |s| s.name())
        );
    }
    for (relation, updates) in catalog.version_snapshot() {
        outln!("  updates since last checkpoint: {relation} = {updates}");
    }
    Ok(())
}

/// Runs the oracle selftest: seed-deterministic differential checks of
/// the paper's theorems plus fault-injection scenarios, reported as JSON
/// on stdout. The report is byte-identical across runs with the same
/// seed and budget, so CI can diff it. Any violation — including a
/// check that silently did not run — exits nonzero.
fn cmd_selftest(flags: &HashMap<String, String>) -> Result<(), String> {
    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(1);
    let budget_ms: u64 = flags
        .get("budget-ms")
        .map(|s| parse_num(s, "budget-ms"))
        .transpose()?
        .unwrap_or(30_000);

    if let Some(path) = flags.get("snapshot") {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        let entries =
            oracle::verify_snapshot(bytes.into()).map_err(|e| format!("snapshot {path}: {e}"))?;
        eprintln!("histctl: snapshot {path} verified ({entries} catalog entries)");
    }
    if let Some(path) = flags.get("emit-snapshot") {
        let snap = oracle::reference_snapshot(seed)?;
        std::fs::write(path, snap.to_vec()).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("histctl: wrote reference snapshot for seed {seed} to {path}");
    }

    let report = oracle::run(seed, budget_ms);
    outln!("{}", report.to_json());
    if report.passed {
        Ok(())
    } else {
        Err(format!(
            "selftest failed with {} violation(s); first: {}",
            report.violations.len(),
            report
                .violations
                .first()
                .map_or("<none recorded>", |v| v.as_str())
        ))
    }
}

/// One SplitMix64 step: the bench's only PRNG. Deterministic, seedable,
/// and dependency-free (the workspace deliberately keeps `rand` out of
/// release binaries), so two runs with the same `--seed` pick the same
/// query sequence.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Folds one 64-bit word into an FNV-1a digest byte-by-byte. Estimate
/// bit patterns go through this, so the digest certifies bit-identical
/// results, not merely "close" ones.
fn fnv1a(digest: u64, word: u64) -> u64 {
    word.to_le_bytes().iter().fold(digest, |d, &b| {
        (d ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    })
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Per-thread-count results of one bench run.
struct BenchRun {
    threads: usize,
    ops: u64,
    elapsed_ms: f64,
    throughput: f64,
    p50_ns: u64,
    p99_ns: u64,
    hit_rate: f64,
    evictions: u64,
    digest: u64,
}

/// Closed-loop estimation load harness. Builds an oracle-generated
/// relation set and query pool, attaches the engine to a journaled
/// catalog whose maintenance daemon keeps re-ANALYZEing columns (so the
/// catalog epoch advances while readers run), then drives concurrent
/// cached estimates at each requested thread count.
///
/// Determinism: with `--ops N` every thread issues exactly N estimates
/// chosen by a seeded SplitMix64 stream, and the churn daemon rebuilds
/// histograms from *unchanged* relations with the *same* builder spec —
/// epochs advance but every recomputed estimate is bit-identical, so
/// the reported digest is byte-stable across reruns with one `--seed`.
/// Timing fields (throughput, quantiles) naturally vary; the digest and
/// op counts do not.
fn cmd_bench(flags: &HashMap<String, String>) -> Result<(), String> {
    use std::time::Instant;

    let seed: u64 = flags
        .get("seed")
        .map(|s| parse_num(s, "seed"))
        .transpose()?
        .unwrap_or(42);
    let duration_ms: u64 = flags
        .get("duration-ms")
        .map(|s| parse_num(s, "duration-ms"))
        .transpose()?
        .unwrap_or(500);
    let ops: Option<u64> = flags.get("ops").map(|s| parse_num(s, "ops")).transpose()?;
    let workload = flags
        .get("workload")
        .map(String::as_str)
        .unwrap_or("selfjoin");
    if workload != "selfjoin" && workload != "chain" && workload != "range" {
        return Err(format!(
            "--workload must be 'selfjoin', 'chain', or 'range', got '{workload}'"
        ));
    }
    let buckets: usize = flags
        .get("buckets")
        .map(|b| parse_num(b, "buckets"))
        .transpose()?
        .unwrap_or(10);
    let spec = class_spec(flags, buckets)?;
    let thread_counts: Vec<usize> = flags
        .get("threads")
        .map(String::as_str)
        .unwrap_or("1,2,4")
        .split(',')
        .map(|t| parse_num::<usize>(t.trim(), "threads"))
        .collect::<Result<_, _>>()?;
    if thread_counts.is_empty() || thread_counts.contains(&0) {
        return Err("--threads needs a comma list of positive counts".into());
    }

    obs::register_well_known();

    // Relations and queries come from the oracle's seed-deterministic
    // workload generator, so `bench` exercises the same distribution
    // shapes (zipf, cusp, uniform, stepped, random) the selftest proves
    // correct. The same pool feeds both transports, which is what makes
    // the in-process and --remote digests comparable.
    let wl = oracle::Workload::generate(seed, oracle::Tier::Quick);
    let (relations, sql_pool) = bench_workload(&wl, workload)?;
    let remote = flags.get("remote");
    let retries: u32 = flags
        .get("retries")
        .map(|s| parse_num(s, "retries"))
        .transpose()?
        .unwrap_or(0);
    let mut nodelay_probe = None;
    let runs = match remote {
        Some(addr) => {
            let class = flags
                .get("class")
                .map(String::as_str)
                .unwrap_or("v_opt_end_biased");
            let runs = bench_runs_remote(
                addr,
                class,
                buckets as u32,
                &relations,
                &sql_pool,
                &thread_counts,
                seed,
                ops,
                duration_ms,
                retries,
            )?;
            nodelay_probe = Some(remote_nodelay_probe(addr, seed, retries)?);
            runs
        }
        None => bench_runs_local(
            &relations,
            &sql_pool,
            &thread_counts,
            seed,
            ops,
            duration_ms,
            spec,
        )?,
    };

    // Cached-vs-uncached single-lookup probe: a join over a wide domain
    // (2048 distinct values) where recomputation walks the dictionaries
    // while a cache hit is one shard probe plus a StatsUse replay.
    let mut probe = engine::Engine::new();
    for (name, rows, z, sub) in [
        ("probe_l", 200_000u64, 1.1f64, 0xabcdu64),
        ("probe_r", 180_000, 0.9, 0xdcba),
    ] {
        let freqs = zipf_frequencies(rows, 2048, z).map_err(|e| e.to_string())?;
        let rel = relation_from_frequency_set(name, "v", &freqs, seed ^ sub)
            .map_err(|e| e.to_string())?;
        probe.register(rel);
    }
    probe.analyze_all_with(spec).map_err(|e| e.to_string())?;
    let pq = probe
        .parse("SELECT COUNT(*) FROM probe_l, probe_r WHERE probe_l.v = probe_r.v")
        .map_err(|e| e.to_string())?;
    probe
        .estimate_with_sources(&pq)
        .map_err(|e| e.to_string())?; // warm the cache
    let median = |mut v: Vec<u64>| -> u64 {
        v.sort_unstable();
        v[v.len() / 2]
    };
    const TRIALS: usize = 501;
    let cached_median = median(
        (0..TRIALS)
            .map(|_| {
                let t0 = Instant::now();
                probe.estimate_with_sources(&pq).expect("cached probe");
                t0.elapsed().as_nanos() as u64
            })
            .collect(),
    );
    let uncached_median = median(
        (0..TRIALS)
            .map(|_| {
                let t0 = Instant::now();
                probe
                    .estimate_with_sources_uncached(&pq)
                    .expect("uncached probe");
                t0.elapsed().as_nanos() as u64
            })
            .collect(),
    );
    let speedup = uncached_median as f64 / cached_median.max(1) as f64;

    let mode = if ops.is_some() { "ops" } else { "duration" };
    let transport = if remote.is_some() {
        "remote"
    } else {
        "inprocess"
    };
    let json = {
        let mut s = format!(
            "{{\"schema\":\"histctl-bench-v1\",\"seed\":{seed},\"workload\":\"{workload}\",\
             \"transport\":\"{transport}\",\
             \"class\":\"{}\",\"buckets\":{buckets},\"mode\":\"{mode}\",\"queries\":{},\
             \"runs\":[",
            spec.name(),
            sql_pool.len()
        );
        for (i, r) in runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"threads\":{},\"ops\":{},\"elapsed_ms\":{:.3},\"throughput\":{:.1},\
                 \"p50_ns\":{},\"p99_ns\":{},\"hit_rate\":{:.4},\"evictions\":{},\
                 \"digest\":\"{:016x}\"}}",
                r.threads,
                r.ops,
                r.elapsed_ms,
                r.throughput,
                r.p50_ns,
                r.p99_ns,
                r.hit_rate,
                r.evictions,
                r.digest
            ));
        }
        s.push_str(&format!(
            "],\"speedup\":{{\"cached_median_ns\":{cached_median},\
             \"uncached_median_ns\":{uncached_median},\"speedup\":{speedup:.1}}}"
        ));
        if let Some((on_ns, off_ns)) = nodelay_probe {
            s.push_str(&format!(
                ",\"nodelay\":{{\"on_median_ns\":{on_ns},\"off_median_ns\":{off_ns}}}"
            ));
        }
        s.push('}');
        s
    };
    if let Some(path) = flags.get("out") {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("write {path}: {e}"))?;
    }
    if flags.contains_key("json") {
        outln!("{json}");
    } else {
        outln!(
            "bench: workload={workload} transport={transport} seed={seed} queries={} mode={mode}",
            sql_pool.len()
        );
        for r in &runs {
            outln!(
                "  threads {:>2}: {:>8} ops in {:>8.1} ms  ({:>10.0} ops/s)  \
                 p50 {:>6} ns  p99 {:>7} ns  hit rate {:.1}%  digest {:016x}",
                r.threads,
                r.ops,
                r.elapsed_ms,
                r.throughput,
                r.p50_ns,
                r.p99_ns,
                r.hit_rate * 100.0,
                r.digest
            );
        }
        outln!(
            "  single lookup: cached {cached_median} ns vs uncached {uncached_median} ns \
             ({speedup:.1}x)"
        );
        if let Some((on_ns, off_ns)) = nodelay_probe {
            outln!(
                "  wire round-trip: nodelay on {on_ns} ns vs off {off_ns} ns \
                 (single-op median)"
            );
        }
    }
    Ok(())
}

/// Builds the bench's relations (each a single column `v`) and SQL
/// query pool for one workload shape. One source of truth shared by the
/// in-process and `--remote` transports: both drive the identical query
/// stream over identical relations, which is what makes their result
/// digests directly comparable.
fn bench_workload(
    wl: &oracle::Workload,
    workload: &str,
) -> Result<(Vec<Relation>, Vec<String>), String> {
    let mut relations = Vec::new();
    let mut sql_pool: Vec<String> = Vec::new();
    match workload {
        "selfjoin" => {
            // One left/right relation pair per medium set; queries are
            // the pair's join, point selections on both sides, and the
            // join with a residual filter.
            for (i, set) in wl.medium_sets.iter().enumerate() {
                let n = set.freqs.len();
                for (suffix, sub) in [("l", 0u64), ("r", 1u64)] {
                    let name = format!("t{i}{suffix}");
                    let rel = relation_from_frequency_set(
                        &name,
                        "v",
                        &set.freqs,
                        wl.subseed(2 * i as u64 + sub),
                    )
                    .map_err(|e| e.to_string())?;
                    relations.push(rel);
                }
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM t{i}l, t{i}r WHERE t{i}l.v = t{i}r.v"
                ));
                sql_pool.push(format!("SELECT COUNT(*) FROM t{i}l WHERE t{i}l.v = 0"));
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM t{i}r WHERE t{i}r.v = {}",
                    n / 2
                ));
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM t{i}l, t{i}r WHERE t{i}l.v = t{i}r.v AND t{i}l.v = {}",
                    n - 1
                ));
            }
        }
        "range" => {
            // One left/right pair per medium set; queries mix every
            // predicate shape the value-carrying buckets answer — point
            // equality, one-sided comparisons, BETWEEN, and band joins —
            // so cache fingerprints and interpolation both run hot
            // while the ANALYZE churn advances the epoch underneath.
            for (i, set) in wl.medium_sets.iter().enumerate() {
                let n = set.freqs.len() as u64;
                for (suffix, sub) in [("l", 0u64), ("r", 1u64)] {
                    let name = format!("t{i}{suffix}");
                    let rel = relation_from_frequency_set(
                        &name,
                        "v",
                        &set.freqs,
                        wl.subseed(2 * i as u64 + sub),
                    )
                    .map_err(|e| e.to_string())?;
                    relations.push(rel);
                }
                let (q1, mid, q3) = (n / 4, n / 2, 3 * n / 4);
                sql_pool.push(format!("SELECT COUNT(*) FROM t{i}l WHERE t{i}l.v = {mid}"));
                sql_pool.push(format!("SELECT COUNT(*) FROM t{i}l WHERE t{i}l.v < {mid}"));
                sql_pool.push(format!("SELECT COUNT(*) FROM t{i}r WHERE t{i}r.v >= {q3}"));
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM t{i}r WHERE t{i}r.v BETWEEN {q1} AND {q3}"
                ));
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM t{i}l, t{i}r WHERE abs(t{i}l.v - t{i}r.v) <= 1"
                ));
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM t{i}l, t{i}r \
                     WHERE abs(t{i}l.v - t{i}r.v) <= 2 AND t{i}l.v >= {q1}"
                ));
            }
        }
        _ => {
            // One relation per medium set; queries chain consecutive
            // relations two and three deep (§2.2's vector/matrix shape
            // collapsed to shared-domain chains).
            for (i, set) in wl.medium_sets.iter().enumerate() {
                let name = format!("c{i}");
                let rel = relation_from_frequency_set(&name, "v", &set.freqs, wl.subseed(i as u64))
                    .map_err(|e| e.to_string())?;
                relations.push(rel);
            }
            let m = wl.medium_sets.len();
            for i in 0..m.saturating_sub(2) {
                let (a, b, c) = (i, i + 1, i + 2);
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM c{a}, c{b} WHERE c{a}.v = c{b}.v"
                ));
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM c{a}, c{b}, c{c} \
                     WHERE c{a}.v = c{b}.v AND c{b}.v = c{c}.v"
                ));
                sql_pool.push(format!(
                    "SELECT COUNT(*) FROM c{a}, c{b}, c{c} \
                     WHERE c{a}.v = c{b}.v AND c{b}.v = c{c}.v AND c{a}.v = {i}"
                ));
            }
        }
    }
    Ok((relations, sql_pool))
}

/// In-process bench transport: the engine attached to a journaled
/// catalog whose maintenance daemon keeps re-ANALYZEing columns (so the
/// catalog epoch advances under the readers' feet) while worker threads
/// drive concurrent cached estimates.
#[allow(clippy::too_many_arguments)]
fn bench_runs_local(
    relations: &[Relation],
    sql_pool: &[String],
    thread_counts: &[usize],
    seed: u64,
    ops: Option<u64>,
    duration_ms: u64,
    spec: BuilderSpec,
) -> Result<Vec<BenchRun>, String> {
    use relstore::{Daemon, DaemonConfig, DaemonCore, DurableCatalog};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let mut eng = engine::Engine::new();
    let dir = std::env::temp_dir().join(format!("histctl_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(DurableCatalog::open(&dir).map_err(|e| e.to_string())?);
    eng.attach_catalog(store.catalog_arc());

    let mut core = DaemonCore::new(DaemonConfig {
        jitter_seed: seed,
        ..DaemonConfig::default()
    });
    let mut rel_names = Vec::new();
    for rel in relations {
        core.register_with_spec(Arc::new(rel.clone()), "v", spec);
        rel_names.push(rel.name().to_string());
        eng.register(rel.clone());
    }
    eng.analyze_all_with(spec).map_err(|e| e.to_string())?;
    let pool: Vec<engine::ast::Query> = sql_pool
        .iter()
        .map(|sql| eng.parse(sql).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;

    // Churn: a background thread marks relations dirty and triggers
    // daemon sweeps, so the daemon keeps journaling fresh ANALYZE
    // results and the catalog epoch advances under the readers' feet.
    let daemon = Daemon::spawn(
        core,
        Arc::clone(&store),
        Duration::from_millis(3_600_000), // manual sweeps only
    );
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let stop = Arc::clone(&stop);
        let store = Arc::clone(&store);
        let rels = rel_names.clone();
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let _ = store.note_updates(&rels[i % rels.len()], 300);
                daemon.sweep_now();
                i += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            daemon.stop()
        })
    };

    let hit_counter = obs::counter("est_cache_hit_total");
    let miss_counter = obs::counter("est_cache_miss_total");
    let evict_counter = obs::counter("est_cache_evict_total");
    let mut runs: Vec<BenchRun> = Vec::new();
    for &threads in thread_counts {
        let (hits0, miss0, evict0) = (hit_counter.get(), miss_counter.get(), evict_counter.get());
        let hist = obs::histogram(&obs::labeled(
            "bench_estimate_ns",
            "threads",
            &threads.to_string(),
        ));
        let started = Instant::now();
        let per_thread: Vec<(u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let (eng, pool, hist) = (&eng, &pool, &hist);
                    s.spawn(move || {
                        let mut state = seed
                            ^ ((threads as u64) << 32)
                            ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let mut digest = FNV_OFFSET;
                        let mut n = 0u64;
                        let deadline = Instant::now() + Duration::from_millis(duration_ms);
                        loop {
                            match ops {
                                Some(k) if n >= k => break,
                                None if Instant::now() >= deadline => break,
                                _ => {}
                            }
                            let idx = (splitmix64(&mut state) % pool.len() as u64) as usize;
                            let t0 = Instant::now();
                            let (est, _) = eng
                                .estimate_with_sources(&pool[idx])
                                .expect("bench estimate");
                            hist.observe_ns(t0.elapsed().as_nanos() as u64);
                            digest = fnv1a(digest, idx as u64);
                            digest = fnv1a(digest, est.to_bits());
                            n += 1;
                        }
                        (n, digest)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bench worker"))
                .collect()
        });
        let elapsed = started.elapsed();
        let total_ops: u64 = per_thread.iter().map(|(n, _)| n).sum();
        // Thread digests fold in worker-index order, so the combined
        // digest is schedule-independent.
        let digest = per_thread.iter().fold(FNV_OFFSET, |d, &(_, t)| fnv1a(d, t));
        let (hits, misses) = (hit_counter.get() - hits0, miss_counter.get() - miss0);
        let probes = hits + misses;
        runs.push(BenchRun {
            threads,
            ops: total_ops,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            throughput: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_ns: hist.quantile_ns(0.5).unwrap_or(0),
            p99_ns: hist.quantile_ns(0.99).unwrap_or(0),
            hit_rate: if probes == 0 {
                0.0
            } else {
                hits as f64 / probes as f64
            },
            evictions: evict_counter.get() - evict0,
            digest,
        });
    }

    // Stop the churn before the caller's speedup probe so the cached
    // side measures steady-state hits, not epoch-bump recomputations.
    stop.store(true, Ordering::Relaxed);
    churn
        .join()
        .map_err(|_| "churn thread panicked".to_string())?;
    let _ = std::fs::remove_dir_all(&dir);
    Ok(runs)
}

/// Reads one unlabeled counter's value out of a Prometheus exposition.
/// Missing counters read as zero, so METRICS deltas stay well-defined
/// against a server that has not touched a family yet.
fn prom_counter(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| {
            line.strip_prefix(name)
                .and_then(|rest| rest.strip_prefix(' '))
                .and_then(|value| value.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Remote bench transport: the identical query stream driven over the
/// VOHW wire protocol against a `serve --listen` server, one connection
/// per worker thread. Cache statistics come from METRICS counter deltas
/// (the estimation cache lives in the server process). There is no
/// churn daemon on this path — the remote tenant's statistics are built
/// once by the initial ANALYZE — and the oracle's
/// `wire_equals_inprocess` invariant guarantees every wire estimate is
/// bit-identical to its in-process twin, so the digests reported here
/// must equal an in-process run's with the same seed and op count.
#[allow(clippy::too_many_arguments)]
fn bench_runs_remote(
    addr: &str,
    class: &str,
    buckets: u32,
    relations: &[Relation],
    sql_pool: &[String],
    thread_counts: &[usize],
    seed: u64,
    ops: Option<u64>,
    duration_ms: u64,
    retries: u32,
) -> Result<Vec<BenchRun>, String> {
    use std::time::{Duration, Instant};

    const TENANT: &str = "bench";
    let mut admin = netserve::Client::connect_with_retry(addr, bench_retry_policy(seed, retries))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    for rel in relations {
        // The typed client only replays LOAD_RELATION on connect-phase
        // failures (a half-delivered mutation must not be blindly
        // resent). The bench knows more: its loads are idempotent
        // upserts of a deterministic relation, so re-driving the whole
        // call after any transport failure converges to the same
        // catalog. That is what lets `bench --remote --retries` run
        // through the chaos proxy end to end.
        let mut attempt = 0;
        loop {
            match admin.load_relation(TENANT, rel) {
                Ok(_) => break,
                Err(netserve::ClientError::Io(_)) if attempt < retries => attempt += 1,
                Err(e) => return Err(format!("load {}: {e}", rel.name())),
            }
        }
    }
    admin
        .analyze(TENANT, class, buckets)
        .map_err(|e| format!("remote ANALYZE: {e}"))?;

    let mut runs = Vec::new();
    for &threads in thread_counts {
        let before = admin.metrics().map_err(|e| e.to_string())?;
        let hist = obs::histogram(&obs::labeled(
            "bench_estimate_ns",
            "threads",
            &threads.to_string(),
        ));
        let started = Instant::now();
        let per_thread: Vec<(u64, u64)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let hist = &hist;
                    s.spawn(move || {
                        // Distinct jitter seeds per worker so retrying
                        // clients fan out instead of stampeding.
                        let policy = bench_retry_policy(seed ^ (worker as u64 + 1), retries);
                        let mut client = netserve::Client::connect_with_retry(addr, policy)
                            .expect("bench connect");
                        let mut state = seed
                            ^ ((threads as u64) << 32)
                            ^ (worker as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        let mut digest = FNV_OFFSET;
                        let mut n = 0u64;
                        let deadline = Instant::now() + Duration::from_millis(duration_ms);
                        loop {
                            match ops {
                                Some(k) if n >= k => break,
                                None if Instant::now() >= deadline => break,
                                _ => {}
                            }
                            let idx = (splitmix64(&mut state) % sql_pool.len() as u64) as usize;
                            let t0 = Instant::now();
                            let (est, _) = client
                                .estimate(TENANT, &sql_pool[idx])
                                .expect("remote estimate");
                            hist.observe_ns(t0.elapsed().as_nanos() as u64);
                            digest = fnv1a(digest, idx as u64);
                            digest = fnv1a(digest, est.to_bits());
                            n += 1;
                        }
                        (n, digest)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bench worker"))
                .collect()
        });
        let elapsed = started.elapsed();
        let after = admin.metrics().map_err(|e| e.to_string())?;
        let total_ops: u64 = per_thread.iter().map(|(n, _)| n).sum();
        // Thread digests fold in worker-index order, so the combined
        // digest is schedule-independent — and transport-independent.
        let digest = per_thread.iter().fold(FNV_OFFSET, |d, &(_, t)| fnv1a(d, t));
        let hits = prom_counter(&after, "est_cache_hit_total")
            - prom_counter(&before, "est_cache_hit_total");
        let misses = prom_counter(&after, "est_cache_miss_total")
            - prom_counter(&before, "est_cache_miss_total");
        let probes = hits + misses;
        runs.push(BenchRun {
            threads,
            ops: total_ops,
            elapsed_ms: elapsed.as_secs_f64() * 1e3,
            throughput: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_ns: hist.quantile_ns(0.5).unwrap_or(0),
            p99_ns: hist.quantile_ns(0.99).unwrap_or(0),
            hit_rate: if probes == 0 {
                0.0
            } else {
                hits as f64 / probes as f64
            },
            evictions: prom_counter(&after, "est_cache_evict_total")
                - prom_counter(&before, "est_cache_evict_total"),
            digest,
        });
    }
    Ok(runs)
}

/// The remote bench's retry schedule: short backoffs (5 ms base,
/// 100 ms cap) because the chaos proxy guarantees every third
/// connection is clean — convergence needs persistence, not patience.
fn bench_retry_policy(seed: u64, retries: u32) -> netserve::RetryPolicy {
    netserve::RetryPolicy {
        retries,
        backoff_base: std::time::Duration::from_millis(5),
        backoff_max: std::time::Duration::from_millis(100),
        seed,
        ..netserve::RetryPolicy::default()
    }
}

/// Measures the single-op (PING) round-trip median with `TCP_NODELAY`
/// on and off on the client socket. The server side always runs with
/// `TCP_NODELAY`, so this isolates the client-side Nagle penalty —
/// the before/after pair recorded in the remote bench report.
fn remote_nodelay_probe(addr: &str, seed: u64, retries: u32) -> Result<(u64, u64), String> {
    use std::time::Instant;

    const TRIALS: usize = 101;
    let mut medians = [0u64; 2];
    for (slot, nodelay) in [(0usize, true), (1usize, false)] {
        let mut client =
            netserve::Client::connect_with_retry(addr, bench_retry_policy(seed, retries))
                .map_err(|e| format!("connect {addr}: {e}"))?;
        client
            .set_nodelay(nodelay)
            .map_err(|e| format!("set_nodelay({nodelay}): {e}"))?;
        let mut samples: Vec<u64> = (0..TRIALS)
            .map(|_| {
                let t0 = Instant::now();
                client.ping().map_err(|e| format!("probe ping: {e}"))?;
                Ok(t0.elapsed().as_nanos() as u64)
            })
            .collect::<Result<_, String>>()?;
        samples.sort_unstable();
        medians[slot] = samples[samples.len() / 2];
    }
    Ok((medians[0], medians[1]))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = parse_flags(rest).and_then(|flags| {
        let outcome = match command.as_str() {
            "generate" => cmd_generate(&flags),
            "analyze" => cmd_analyze(&flags),
            "inspect" => cmd_inspect(&flags),
            "estimate-eq" => cmd_estimate_eq(&flags),
            "estimate-join" => cmd_estimate_join(&flags),
            "query" => cmd_query(&flags),
            "metrics" => cmd_metrics(&flags),
            "trace" => cmd_trace(&flags),
            "top" => cmd_top(&flags),
            "serve" => cmd_serve(&flags),
            "tune" => cmd_tune(&flags),
            "client" => cmd_client(&flags),
            "chaos" => cmd_chaos(&flags),
            "recover" => cmd_recover(&flags),
            "selftest" => cmd_selftest(&flags),
            "bench" => cmd_bench(&flags),
            "-h" | "--help" | "help" => {
                outln!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command '{other}'\n{USAGE}")),
        };
        // The shared flight-recorder dump: after any subcommand, write
        // whatever the recorder buffered while the command ran. The
        // summary goes to stderr so stdout stays the command's payload.
        match (outcome, flags.get("trace-out")) {
            (Ok(()), Some(path)) => {
                let format = flags
                    .get("trace-format")
                    .map(String::as_str)
                    .unwrap_or("jsonl");
                let (events, dropped) = write_trace(path, format)?;
                eprintln!(
                    "histctl: dumped {events} trace event(s) ({dropped} dropped so far) \
                     to {path} ({format})"
                );
                Ok(())
            }
            (outcome, _) => outcome,
        }
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("histctl: {e}");
            ExitCode::from(2)
        }
    }
}
