#!/usr/bin/env bash
# The full CI gate, runnable locally and offline:
#   formatting, lints-as-errors, docs-as-errors, the builder-registry
#   dispatch guard, release build, and the test suite.
# The release build + `cargo test -q` pair is the tier-1 gate; fmt,
# clippy, and rustdoc keep the tree warning-free.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (warnings denied, own crates only)"
# The vendored crates under vendor/ carry their upstream rustdoc
# warnings; the gate covers the crates this repo authors.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p histograms-repro -p freqdist -p vopt-hist -p relstore \
  -p query -p engine -p experiments -p obs -p hist-bench

echo "==> builder-registry dispatch guard"
# Histogram-constructor dispatch must live in the registry alone: a
# `match` arm (or other `=>` branch) that calls a raw constructor
# outside crates/core/src/registry.rs reintroduces the per-layer class
# switches this refactor removed. Direct (non-dispatch) constructor
# calls in tests and ground-truth checks remain fine.
guard_pattern='=>[^=]*\b(trivial|equi_width|equi_depth|v_opt_serial|v_opt_serial_dp|v_opt_end_biased|max_diff|end_biased)\s*\('
if grep -RnE "$guard_pattern" \
    --include='*.rs' \
    src tests examples crates \
    | grep -v 'crates/core/src/registry.rs'; then
  echo "error: histogram-constructor dispatch found outside the builder registry" >&2
  echo "       (route it through vopt_hist::BuilderSpec instead)" >&2
  exit 1
fi

echo "==> no-ignored-tests guard"
# Every test must run in CI: an `#[ignore]` outside crates/bench (whose
# long-running calibration harnesses are opt-in by design) silently
# removes coverage. Gate it like the dispatch guard above.
if grep -Rn '#\[ignore' \
    --include='*.rs' \
    src tests examples crates \
    | grep -v '^crates/bench/'; then
  echo "error: #[ignore] tests found outside crates/bench" >&2
  echo "       (either make the test fast enough for CI or move it to the bench crate)" >&2
  exit 1
fi

echo "==> journal-encapsulation guard"
# The write-ahead journal's framing, fsync ordering, and torn-tail
# truncation are correct only if every open of a journal file goes
# through relstore::wal. Any other code mentioning the journal file
# naming scheme (journal.<gen>.wal) is bypassing the WAL's invariants.
# Tests and the CLI walkthroughs may *read* a journal to tear it on
# purpose; production crates may not touch it at all.
if grep -RnE 'journal\.\{?[0-9a-zA-Z_:$<>]*\}?\.wal|"journal\.' \
    --include='*.rs' \
    src crates examples \
    | grep -v 'crates/relstore/src/wal.rs'; then
  echo "error: journal file access found outside relstore::wal" >&2
  echo "       (route catalog persistence through relstore::DurableCatalog)" >&2
  exit 1
fi

echo "==> estimation-cache epoch guard"
# The estimation cache is correct only because every probe is keyed by
# the epoch of the snapshot the estimate is computed on. Two rules,
# both greppable: (1) no code outside the engine's read path touches
# the cache type; (2) inside the engine, every cache get/insert passes
# `snap.epoch()` — the epoch of the *pinned* snapshot, not a re-read of
# the live catalog, which could race a concurrent mutation between the
# epoch read and the probe.
if grep -RnE 'EstimationCache|\.cache\.(get|insert)\(' \
    --include='*.rs' \
    src tests examples crates \
  | grep -v 'crates/engine/src/engine.rs' \
  | grep -v 'crates/engine/src/cache.rs'; then
  echo "error: estimation-cache access outside the engine's epoch-snapshot read path" >&2
  echo "       (estimates go through Engine::estimate_with_sources)" >&2
  exit 1
fi
if ! python3 - <<'PY'
import re
import sys

src = re.sub(r"\s+", "", open("crates/engine/src/engine.rs").read())
probes = len(re.findall(r"\.cache\.(?:get|insert)\(", src))
keyed = len(re.findall(r"\.cache\.(?:get|insert)\(fp,snap\.epoch\(\)[,)]", src))
if probes == 0:
    sys.exit("no cache probes found in engine.rs — did the read path move?")
if keyed != probes:
    sys.exit(
        f"{probes - keyed} cache probe(s) not keyed by the pinned snap.epoch()"
    )
PY
then
  echo "error: estimation-cache probe not keyed by the pinned snapshot's epoch" >&2
  exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (PROPTEST_CASES=${PROPTEST_CASES:-64})"
# Pin the property-test case count so CI runs are reproducible and the
# persisted .proptest-regressions corpora replay under the same budget
# everywhere. Override by exporting PROPTEST_CASES before invoking.
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q

echo "==> oracle selftest (differential checks + fault injection)"
# Seed-deterministic end-to-end verification of the paper's theorems
# against brute force, plus fault-injection containment; exits nonzero
# on any violation, including a check that silently did not run.
selftest_report="$(target/release/histctl selftest --seed 1 --budget-ms 30000)"

echo "==> crash-recovery gate"
# The selftest's kill-point matrix (journal append / journal fsync /
# snapshot rotation / daemon refresh, each with and without a prior
# checkpoint) must actually have injected faults: recovery landing on
# anything but a committed catalog state, or the matrix silently not
# running, fails the build. The report validates zero-injection runs
# itself; this gate additionally pins the scenario's presence, verdict,
# and a nonzero injection count — parsed from the JSON rather than
# grepped as one exact byte sequence, so serializer formatting or
# matrix-size changes cannot fail the gate spuriously.
if ! SELFTEST_REPORT="$selftest_report" python3 - <<'PY'
import json
import os
import sys

report = json.loads(os.environ["SELFTEST_REPORT"])
fault = next(
    (f for f in report.get("faults", [])
     if f.get("name") == "crash_recovery_restores_committed_state"),
    None,
)
if fault is None:
    sys.exit("crash-recovery scenario missing from selftest report")
if not fault.get("passed"):
    sys.exit(f"crash-recovery scenario failed: {fault.get('failures')}")
if not fault.get("injected"):
    sys.exit("crash-recovery scenario injected zero faults")
PY
then
  echo "error: crash-recovery matrix missing, failing, or incomplete in selftest report" >&2
  exit 1
fi

echo "==> bench smoke gate (deterministic digest + cache speedup)"
# The load harness must (1) report the full histctl-bench-v1 schema,
# (2) produce a byte-identical result digest across reruns with one
# seed in --ops mode, and (3) show the cached single-lookup path at
# least 10x faster than uncached recomputation. Timing fields vary run
# to run by design; the digest and op counts may not.
bench_a="$(mktemp)"
bench_b="$(mktemp)"
trap 'rm -f "$bench_a" "$bench_b"' EXIT
target/release/histctl bench --threads 1,2,4 --ops 200 --seed 1 --json > "$bench_a"
target/release/histctl bench --threads 1,2,4 --ops 200 --seed 1 --json > "$bench_b"
if ! BENCH_A="$bench_a" BENCH_B="$bench_b" python3 - <<'PY'
import json
import os
import sys

a = json.load(open(os.environ["BENCH_A"]))
b = json.load(open(os.environ["BENCH_B"]))
if a.get("schema") != "histctl-bench-v1":
    sys.exit(f"unexpected schema: {a.get('schema')}")
if [r["threads"] for r in a["runs"]] != [1, 2, 4]:
    sys.exit(f"wrong thread counts: {[r['threads'] for r in a['runs']]}")
for r in a["runs"]:
    for field in ("ops", "throughput", "p50_ns", "p99_ns", "hit_rate", "digest"):
        if field not in r:
            sys.exit(f"run missing {field}: {r}")
    if r["ops"] != r["threads"] * 200:
        sys.exit(f"wrong fixed op count: {r}")
    if not (0.0 <= r["hit_rate"] <= 1.0):
        sys.exit(f"hit rate out of range: {r}")
    if r["p50_ns"] <= 0 or r["p99_ns"] < r["p50_ns"]:
        sys.exit(f"implausible latency quantiles: {r}")
da = [(r["threads"], r["ops"], r["digest"]) for r in a["runs"]]
db = [(r["threads"], r["ops"], r["digest"]) for r in b["runs"]]
if da != db:
    sys.exit(f"bench digests differ across reruns with one seed:\n{da}\n{db}")
speedup = a["speedup"]["speedup"]
if speedup < 10.0:
    sys.exit(f"cached single lookup only {speedup}x faster than uncached (< 10x)")
# The committed trajectory artifact must exist and carry >= 4-thread
# scaling data under the same schema.
c = json.load(open("BENCH_pr5.json"))
if c.get("schema") != "histctl-bench-v1":
    sys.exit("BENCH_pr5.json missing or not a histctl-bench-v1 report")
if max(r["threads"] for r in c["runs"]) < 4:
    sys.exit("BENCH_pr5.json lacks >=4-thread scaling data")
if c["speedup"]["speedup"] < 10.0:
    sys.exit("BENCH_pr5.json records a sub-10x cache speedup")
PY
then
  echo "error: bench smoke gate failed (schema, determinism, or speedup)" >&2
  exit 1
fi

echo "CI gate passed."
