#!/usr/bin/env bash
# The full CI gate, runnable locally and offline:
#   formatting, lints-as-errors, docs-as-errors, the builder-registry
#   dispatch guard, release build, and the test suite.
# The release build + `cargo test -q` pair is the tier-1 gate; fmt,
# clippy, and rustdoc keep the tree warning-free.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (warnings denied, own crates only)"
# The vendored crates under vendor/ carry their upstream rustdoc
# warnings; the gate covers the crates this repo authors.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p histograms-repro -p freqdist -p vopt-hist -p relstore \
  -p query -p engine -p experiments -p obs -p hist-bench

echo "==> builder-registry dispatch guard"
# Histogram-constructor dispatch must live in the registry alone: a
# `match` arm (or other `=>` branch) that calls a raw constructor
# outside crates/core/src/registry.rs reintroduces the per-layer class
# switches this refactor removed. Direct (non-dispatch) constructor
# calls in tests and ground-truth checks remain fine.
guard_pattern='=>[^=]*\b(trivial|equi_width|equi_depth|v_opt_serial|v_opt_serial_dp|v_opt_end_biased|max_diff|end_biased)\s*\('
if grep -RnE "$guard_pattern" \
    --include='*.rs' \
    src tests examples crates \
    | grep -v 'crates/core/src/registry.rs'; then
  echo "error: histogram-constructor dispatch found outside the builder registry" >&2
  echo "       (route it through vopt_hist::BuilderSpec instead)" >&2
  exit 1
fi

echo "==> no-ignored-tests guard"
# Every test must run in CI: an `#[ignore]` outside crates/bench (whose
# long-running calibration harnesses are opt-in by design) silently
# removes coverage. Gate it like the dispatch guard above.
if grep -Rn '#\[ignore' \
    --include='*.rs' \
    src tests examples crates \
    | grep -v '^crates/bench/'; then
  echo "error: #[ignore] tests found outside crates/bench" >&2
  echo "       (either make the test fast enough for CI or move it to the bench crate)" >&2
  exit 1
fi

echo "==> journal-encapsulation guard"
# The write-ahead journal's framing, fsync ordering, and torn-tail
# truncation are correct only if every open of a journal file goes
# through relstore::wal. Any other code mentioning the journal file
# naming scheme (journal.<gen>.wal) is bypassing the WAL's invariants.
# Tests and the CLI walkthroughs may *read* a journal to tear it on
# purpose; production crates may not touch it at all.
if grep -RnE 'journal\.\{?[0-9a-zA-Z_:$<>]*\}?\.wal|"journal\.' \
    --include='*.rs' \
    src crates examples \
    | grep -v 'crates/relstore/src/wal.rs'; then
  echo "error: journal file access found outside relstore::wal" >&2
  echo "       (route catalog persistence through relstore::DurableCatalog)" >&2
  exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (PROPTEST_CASES=${PROPTEST_CASES:-64})"
# Pin the property-test case count so CI runs are reproducible and the
# persisted .proptest-regressions corpora replay under the same budget
# everywhere. Override by exporting PROPTEST_CASES before invoking.
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q

echo "==> oracle selftest (differential checks + fault injection)"
# Seed-deterministic end-to-end verification of the paper's theorems
# against brute force, plus fault-injection containment; exits nonzero
# on any violation, including a check that silently did not run.
selftest_report="$(target/release/histctl selftest --seed 1 --budget-ms 30000)"

echo "==> crash-recovery gate"
# The selftest's kill-point matrix (journal append / journal fsync /
# snapshot rotation / daemon refresh, each with and without a prior
# checkpoint) must actually have injected faults: recovery landing on
# anything but a committed catalog state, or the matrix silently not
# running, fails the build. The report validates zero-injection runs
# itself; this gate additionally pins the scenario's presence, verdict,
# and a nonzero injection count — parsed from the JSON rather than
# grepped as one exact byte sequence, so serializer formatting or
# matrix-size changes cannot fail the gate spuriously.
if ! SELFTEST_REPORT="$selftest_report" python3 - <<'PY'
import json
import os
import sys

report = json.loads(os.environ["SELFTEST_REPORT"])
fault = next(
    (f for f in report.get("faults", [])
     if f.get("name") == "crash_recovery_restores_committed_state"),
    None,
)
if fault is None:
    sys.exit("crash-recovery scenario missing from selftest report")
if not fault.get("passed"):
    sys.exit(f"crash-recovery scenario failed: {fault.get('failures')}")
if not fault.get("injected"):
    sys.exit("crash-recovery scenario injected zero faults")
PY
then
  echo "error: crash-recovery matrix missing, failing, or incomplete in selftest report" >&2
  exit 1
fi

echo "CI gate passed."
