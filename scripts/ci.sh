#!/usr/bin/env bash
# The full CI gate, runnable locally and offline:
#   formatting, lints-as-errors, release build, and the test suite.
# The release build + `cargo test -q` pair is the tier-1 gate; fmt and
# clippy keep the tree warning-free.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI gate passed."
