#!/usr/bin/env bash
# The full CI gate, runnable locally and offline:
#   formatting, lints-as-errors, docs-as-errors, the builder-registry
#   dispatch guard, release build, and the test suite.
# The release build + `cargo test -q` pair is the tier-1 gate; fmt,
# clippy, and rustdoc keep the tree warning-free.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo doc --no-deps (warnings denied, own crates only)"
# The vendored crates under vendor/ carry their upstream rustdoc
# warnings; the gate covers the crates this repo authors.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
  -p histograms-repro -p freqdist -p vopt-hist -p relstore \
  -p query -p engine -p experiments -p obs -p hist-bench -p netserve

echo "==> builder-registry dispatch guard"
# Histogram-constructor dispatch must live in the registry alone: a
# `match` arm (or other `=>` branch) that calls a raw constructor
# outside crates/core/src/registry.rs reintroduces the per-layer class
# switches this refactor removed. Direct (non-dispatch) constructor
# calls in tests and ground-truth checks remain fine.
guard_pattern='=>[^=]*\b(trivial|equi_width|equi_depth|v_opt_serial|v_opt_serial_dp|v_opt_end_biased|max_diff|end_biased)\s*\('
if grep -RnE "$guard_pattern" \
    --include='*.rs' \
    src tests examples crates \
    | grep -v 'crates/core/src/registry.rs'; then
  echo "error: histogram-constructor dispatch found outside the builder registry" >&2
  echo "       (route it through vopt_hist::BuilderSpec instead)" >&2
  exit 1
fi

echo "==> no-ignored-tests guard"
# Every test must run in CI: an `#[ignore]` outside crates/bench (whose
# long-running calibration harnesses are opt-in by design) silently
# removes coverage. Gate it like the dispatch guard above.
if grep -Rn '#\[ignore' \
    --include='*.rs' \
    src tests examples crates \
    | grep -v '^crates/bench/'; then
  echo "error: #[ignore] tests found outside crates/bench" >&2
  echo "       (either make the test fast enough for CI or move it to the bench crate)" >&2
  exit 1
fi

echo "==> journal-encapsulation guard"
# The write-ahead journal's framing, fsync ordering, and torn-tail
# truncation are correct only if every open of a journal file goes
# through relstore::wal. Any other code mentioning the journal file
# naming scheme (journal.<gen>.wal) is bypassing the WAL's invariants.
# Tests and the CLI walkthroughs may *read* a journal to tear it on
# purpose; production crates may not touch it at all.
if grep -RnE 'journal\.\{?[0-9a-zA-Z_:$<>]*\}?\.wal|"journal\.' \
    --include='*.rs' \
    src crates examples \
    | grep -v 'crates/relstore/src/wal.rs'; then
  echo "error: journal file access found outside relstore::wal" >&2
  echo "       (route catalog persistence through relstore::DurableCatalog)" >&2
  exit 1
fi

echo "==> socket-timeout confinement guard"
# Connection deadlines are a netserve policy, enforced in one place
# (the server's DeadlineReader and the chaos proxy's bounded pumps).
# A raw set_read_timeout/set_write_timeout anywhere else is an ad-hoc
# deadline that bypasses the typed DEADLINE close, the
# net_deadline_total counter, and the slot-release path.
if grep -RnE 'set_read_timeout|set_write_timeout' \
    --include='*.rs' \
    src tests examples crates \
  | grep -v '^crates/netserve/'; then
  echo "error: raw socket timeout calls found outside crates/netserve" >&2
  echo "       (deadlines are configured via netserve::ServerConfig)" >&2
  exit 1
fi

echo "==> socket-confinement guard"
# Raw socket I/O lives in crates/netserve alone: every other crate,
# binary, and test speaks to the statistics server through
# netserve::{Server, Client}. A TcpListener/TcpStream anywhere else is
# a second protocol implementation waiting to drift from the
# checksummed VOHW framing and its admission-control semantics.
if grep -RnE 'TcpListener|TcpStream|UdpSocket' \
    --include='*.rs' \
    src tests examples crates \
  | grep -v '^crates/netserve/'; then
  echo "error: raw socket I/O found outside crates/netserve" >&2
  echo "       (speak the wire protocol through netserve::Server / netserve::Client)" >&2
  exit 1
fi

echo "==> trace-emission confinement guard"
# The flight recorder's event schema lives in one place: only crates/obs
# constructs TraceKind values or pushes ring events; every other crate
# emits through the typed helpers (obs::trace::cache_probe, rung_chosen,
# wal_append, ...). The oracle's tracing-transparency invariant is the
# one allowed *consumer*: it pattern-matches drained events to falsify
# the recorder, but never constructs them.
if grep -RnE 'TraceKind::|push\(Event' \
    --include='*.rs' \
    src tests examples crates \
  | grep -v '^crates/obs/' \
  | grep -v '^crates/oracle/src/invariants.rs'; then
  echo "error: trace-event construction found outside crates/obs" >&2
  echo "       (emit through the typed helpers in obs::trace)" >&2
  exit 1
fi

echo "==> estimation-cache epoch guard"
# The estimation cache is correct only because every probe is keyed by
# the epoch of the snapshot the estimate is computed on. Two rules,
# both greppable: (1) no code outside the engine's read path touches
# the cache type; (2) inside the engine, every cache get/insert passes
# `snap.epoch()` — the epoch of the *pinned* snapshot, not a re-read of
# the live catalog, which could race a concurrent mutation between the
# epoch read and the probe.
if grep -RnE 'EstimationCache|\.cache\.(get|insert)\(' \
    --include='*.rs' \
    src tests examples crates \
  | grep -v 'crates/engine/src/engine.rs' \
  | grep -v 'crates/engine/src/cache.rs'; then
  echo "error: estimation-cache access outside the engine's epoch-snapshot read path" >&2
  echo "       (estimates go through Engine::estimate_with_sources)" >&2
  exit 1
fi
if ! python3 - <<'PY'
import re
import sys

src = re.sub(r"\s+", "", open("crates/engine/src/engine.rs").read())
probes = len(re.findall(r"\.cache\.(?:get|insert)\(", src))
keyed = len(re.findall(r"\.cache\.(?:get|insert)\(fp,snap\.epoch\(\)[,)]", src))
if probes == 0:
    sys.exit("no cache probes found in engine.rs — did the read path move?")
if keyed != probes:
    sys.exit(
        f"{probes - keyed} cache probe(s) not keyed by the pinned snap.epoch()"
    )
PY
then
  echo "error: estimation-cache probe not keyed by the pinned snapshot's epoch" >&2
  exit 1
fi

echo "==> interpolation-confinement guard"
# Overlap-ratio interpolation lives in crates/core/src/interp.rs and
# nowhere else: the engine and query crates consume overlap_fraction /
# band_fraction / clamp_fraction, they never re-derive the arithmetic.
# Two greppable rules: (1) the fraction functions are defined only in
# the interp module; (2) no ad-hoc `(hi - lo)`-denominator division
# appears in engine or query source (comment lines are exempt — prose
# may mention ranges; code may not divide by a span difference).
if grep -RnE 'fn (overlap_fraction|band_fraction|clamp_fraction)' \
    --include='*.rs' \
    src tests examples crates \
  | grep -v 'crates/core/src/interp.rs'; then
  echo "error: interpolation-fraction definition found outside vopt_hist::interp" >&2
  echo "       (all interpolation arithmetic belongs in crates/core/src/interp.rs)" >&2
  exit 1
fi
if grep -RnE '[^/]/ *\([^)]*[a-z_0-9] *- *[a-z_0-9][^)]*\)' \
    --include='*.rs' \
    crates/engine/src crates/query/src \
  | grep -vE ':[0-9]+: *//'; then
  echo "error: ad-hoc interpolation arithmetic (division by a value-span difference)" >&2
  echo "       found in engine/query — call vopt_hist::interp instead" >&2
  exit 1
fi

echo "==> feedback-mutation confinement guard"
# Histogram mutation from query feedback is correct only because it is
# funnelled through one pure function and one journaled mutation
# point. Two greppable rules: (1) `tune_step` — the arithmetic that
# moves mass between buckets — is called only from the tuner module
# itself (and its own property tests) and from the catalog's
# `compute_tune`, which every journaled path consumes; (2) no
# production crate outside relstore calls `apply_tune` directly —
# live tuning goes through `DurableCatalog::tune_column` so the WAL
# record, the epoch bump, and the obs counters can never be skipped
# (tests may drive `apply_tune` to falsify the mutation point itself).
if grep -RnE '\btune_step\s*\(' \
    --include='*.rs' \
    src tests examples crates \
  | grep -v 'crates/core/src/feedback.rs' \
  | grep -v 'crates/core/tests/feedback_properties.rs' \
  | grep -v 'crates/relstore/src/catalog.rs'; then
  echo "error: tune_step called outside the feedback tuner and Catalog::compute_tune" >&2
  echo "       (feedback mutations go through DurableCatalog::tune_column)" >&2
  exit 1
fi
if grep -RnE '\bapply_tune\s*\(' \
    --include='*.rs' \
    src examples \
    crates/*/src \
  | grep -v '^crates/relstore/src/'; then
  echo "error: apply_tune called outside relstore's journaled tune path" >&2
  echo "       (feedback mutations go through DurableCatalog::tune_column)" >&2
  exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (PROPTEST_CASES=${PROPTEST_CASES:-64})"
# Pin the property-test case count so CI runs are reproducible and the
# persisted .proptest-regressions corpora replay under the same budget
# everywhere. Override by exporting PROPTEST_CASES before invoking.
PROPTEST_CASES="${PROPTEST_CASES:-64}" cargo test -q

echo "==> oracle selftest (differential checks + fault injection)"
# Seed-deterministic end-to-end verification of the paper's theorems
# against brute force, plus fault-injection containment; exits nonzero
# on any violation, including a check that silently did not run.
selftest_report="$(target/release/histctl selftest --seed 1 --budget-ms 30000)"

echo "==> crash-recovery gate"
# The selftest's kill-point matrix (journal append / journal fsync /
# snapshot rotation / daemon refresh, each with and without a prior
# checkpoint) must actually have injected faults: recovery landing on
# anything but a committed catalog state, or the matrix silently not
# running, fails the build. The report validates zero-injection runs
# itself; this gate additionally pins the scenario's presence, verdict,
# and a nonzero injection count — parsed from the JSON rather than
# grepped as one exact byte sequence, so serializer formatting or
# matrix-size changes cannot fail the gate spuriously.
if ! SELFTEST_REPORT="$selftest_report" python3 - <<'PY'
import json
import os
import sys

report = json.loads(os.environ["SELFTEST_REPORT"])
fault = next(
    (f for f in report.get("faults", [])
     if f.get("name") == "crash_recovery_restores_committed_state"),
    None,
)
if fault is None:
    sys.exit("crash-recovery scenario missing from selftest report")
if not fault.get("passed"):
    sys.exit(f"crash-recovery scenario failed: {fault.get('failures')}")
if not fault.get("injected"):
    sys.exit("crash-recovery scenario injected zero faults")
PY
then
  echo "error: crash-recovery matrix missing, failing, or incomplete in selftest report" >&2
  exit 1
fi

echo "==> range-invariant gate"
# The value-carrying-buckets invariant must be declared in
# EXPECTED_CHECKS (so a silently skipped run fails report validation)
# and must actually have run and passed in the selftest above, with a
# nonzero case count.
if ! grep -q '"range_band_matches_execution"' crates/oracle/src/report.rs; then
  echo "error: range_band_matches_execution missing from oracle EXPECTED_CHECKS" >&2
  exit 1
fi
if ! SELFTEST_REPORT="$selftest_report" python3 - <<'PY'
import json
import os
import sys

report = json.loads(os.environ["SELFTEST_REPORT"])
check = next(
    (c for c in report.get("checks", [])
     if c.get("name") == "range_band_matches_execution"),
    None,
)
if check is None:
    sys.exit("range_band_matches_execution missing from selftest report")
if not check.get("passed"):
    sys.exit(f"range_band_matches_execution failed: {check.get('failures')}")
if not check.get("cases"):
    sys.exit("range_band_matches_execution verified zero cases")
PY
then
  echo "error: range/band invariant missing, failing, or empty in selftest report" >&2
  exit 1
fi

echo "==> wire-equivalence gate"
# The serving layer's twelfth invariant must be declared in
# EXPECTED_CHECKS (so a silently skipped run fails report validation)
# and must actually have run and passed in the selftest above, with a
# nonzero case count: estimates and StatsUse trails served over a
# loopback socket are bit-identical to in-process calls.
if ! grep -q '"wire_equals_inprocess"' crates/oracle/src/report.rs; then
  echo "error: wire_equals_inprocess missing from oracle EXPECTED_CHECKS" >&2
  exit 1
fi
if ! SELFTEST_REPORT="$selftest_report" python3 - <<'PY'
import json
import os
import sys

report = json.loads(os.environ["SELFTEST_REPORT"])
check = next(
    (c for c in report.get("checks", [])
     if c.get("name") == "wire_equals_inprocess"),
    None,
)
if check is None:
    sys.exit("wire_equals_inprocess missing from selftest report")
if not check.get("passed"):
    sys.exit(f"wire_equals_inprocess failed: {check.get('failures')}")
if not check.get("cases"):
    sys.exit("wire_equals_inprocess verified zero cases")
PY
then
  echo "error: wire-equivalence invariant missing, failing, or empty in selftest report" >&2
  exit 1
fi

echo "==> feedback-convergence gate"
# The self-tuning loop's fourteenth invariant must be declared in
# EXPECTED_CHECKS (so a silently skipped run fails report validation)
# and must actually have run and passed in the selftest above, with a
# nonzero case count: on drifted statistics under a stationary hot
# query, the journaled tuning path's median observed Q-error is
# monotonically non-increasing and ends within 1.5x of ANALYZE-fresh.
if ! grep -q '"feedback_converges"' crates/oracle/src/report.rs; then
  echo "error: feedback_converges missing from oracle EXPECTED_CHECKS" >&2
  exit 1
fi
if ! SELFTEST_REPORT="$selftest_report" python3 - <<'PY'
import json
import os
import sys

report = json.loads(os.environ["SELFTEST_REPORT"])
check = next(
    (c for c in report.get("checks", [])
     if c.get("name") == "feedback_converges"),
    None,
)
if check is None:
    sys.exit("feedback_converges missing from selftest report")
if not check.get("passed"):
    sys.exit(f"feedback_converges failed: {check.get('failures')}")
if not check.get("cases"):
    sys.exit("feedback_converges verified zero cases")
PY
then
  echo "error: feedback-convergence invariant missing, failing, or empty in selftest report" >&2
  exit 1
fi

echo "==> bench smoke gate (deterministic digest + cache speedup)"
# The load harness must (1) report the full histctl-bench-v1 schema,
# (2) produce a byte-identical result digest across reruns with one
# seed in --ops mode, and (3) show the cached single-lookup path at
# least 10x faster than uncached recomputation. Timing fields vary run
# to run by design; the digest and op counts may not.
bench_a="$(mktemp)"
bench_b="$(mktemp)"
bench_remote="$(mktemp)"
trace_out="$(mktemp)"
serve_log="$(mktemp)"
tenants_dir="$(mktemp -d)"
trap 'rm -rf "$bench_a" "$bench_b" "$bench_remote" "$trace_out" "$serve_log" "$tenants_dir"' EXIT
target/release/histctl bench --threads 1,2,4 --ops 200 --seed 1 --json > "$bench_a"
target/release/histctl bench --threads 1,2,4 --ops 200 --seed 1 --json > "$bench_b"
if ! BENCH_A="$bench_a" BENCH_B="$bench_b" python3 - <<'PY'
import json
import os
import sys

a = json.load(open(os.environ["BENCH_A"]))
b = json.load(open(os.environ["BENCH_B"]))
if a.get("schema") != "histctl-bench-v1":
    sys.exit(f"unexpected schema: {a.get('schema')}")
if [r["threads"] for r in a["runs"]] != [1, 2, 4]:
    sys.exit(f"wrong thread counts: {[r['threads'] for r in a['runs']]}")
for r in a["runs"]:
    for field in ("ops", "throughput", "p50_ns", "p99_ns", "hit_rate", "digest"):
        if field not in r:
            sys.exit(f"run missing {field}: {r}")
    if r["ops"] != r["threads"] * 200:
        sys.exit(f"wrong fixed op count: {r}")
    if not (0.0 <= r["hit_rate"] <= 1.0):
        sys.exit(f"hit rate out of range: {r}")
    if r["p50_ns"] <= 0 or r["p99_ns"] < r["p50_ns"]:
        sys.exit(f"implausible latency quantiles: {r}")
da = [(r["threads"], r["ops"], r["digest"]) for r in a["runs"]]
db = [(r["threads"], r["ops"], r["digest"]) for r in b["runs"]]
if da != db:
    sys.exit(f"bench digests differ across reruns with one seed:\n{da}\n{db}")
speedup = a["speedup"]["speedup"]
if speedup < 10.0:
    sys.exit(f"cached single lookup only {speedup}x faster than uncached (< 10x)")
# The committed trajectory artifact must exist and carry >= 4-thread
# scaling data under the same schema.
c = json.load(open("BENCH_pr5.json"))
if c.get("schema") != "histctl-bench-v1":
    sys.exit("BENCH_pr5.json missing or not a histctl-bench-v1 report")
if max(r["threads"] for r in c["runs"]) < 4:
    sys.exit("BENCH_pr5.json lacks >=4-thread scaling data")
if c["speedup"]["speedup"] < 10.0:
    sys.exit("BENCH_pr5.json records a sub-10x cache speedup")
PY
then
  echo "error: bench smoke gate failed (schema, determinism, or speedup)" >&2
  exit 1
fi

echo "==> loopback serving gate (remote digests = in-process digests)"
# End-to-end over a real socket: a multi-tenant server on an ephemeral
# loopback port must answer client requests, and a bench --remote run
# with the same seed/ops/threads must report byte-identical result
# digests to the in-process run captured above — the serving layer adds
# latency, never error. The client-driven SHUTDOWN then checkpoints the
# bench tenant, and the server process must exit cleanly.
target/release/histctl serve --listen 127.0.0.1:0 --tenants "$tenants_dir" \
  > "$serve_log" &
serve_pid=$!
addr=""
for _ in $(seq 100); do
  addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$serve_log" | head -1 || true)"
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "error: serve --listen did not report a bound address" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
target/release/histctl client --addr "$addr" --op ping > /dev/null
target/release/histctl bench --threads 1,2,4 --ops 200 --seed 1 --json \
  --remote "$addr" > "$bench_remote"
target/release/histctl client --addr "$addr" --op shutdown > /dev/null
wait "$serve_pid"
if ! BENCH_A="$bench_a" BENCH_REMOTE="$bench_remote" python3 - <<'PY'
import json
import os
import sys

local = json.load(open(os.environ["BENCH_A"]))
remote = json.load(open(os.environ["BENCH_REMOTE"]))
if local.get("transport") != "inprocess" or remote.get("transport") != "remote":
    sys.exit(
        f"transport fields wrong: {local.get('transport')} / {remote.get('transport')}"
    )
dl = [(r["threads"], r["ops"], r["digest"]) for r in local["runs"]]
dr = [(r["threads"], r["ops"], r["digest"]) for r in remote["runs"]]
if dl != dr:
    sys.exit(f"wire digests differ from in-process digests:\n{dl}\n{dr}")
PY
then
  echo "error: loopback serving gate failed (wire digests != in-process digests)" >&2
  exit 1
fi
if ! grep -q 'checkpointed' "$serve_log"; then
  echo "error: graceful shutdown did not report tenant checkpoints" >&2
  exit 1
fi

echo "==> chaos-convergence gate (retrying bench through the proxy = direct digests)"
# Fault tolerance end to end over real processes: a serve --listen
# server, the deterministic chaos proxy in front of it (dropped
# connections, truncated responses, injected resets, delays), and a
# retrying bench --remote driven through the proxy. The chaotic run's
# result digests must be byte-identical to a direct-connection run —
# the fault layer adds retries, never error. SIGTERM must stop the
# proxy cleanly and checkpoint the server's tenants.
chaos_tenants="$(mktemp -d)"
chaos_serve_log="$(mktemp)"
chaos_log="$(mktemp)"
bench_direct="$(mktemp)"
bench_chaos="$(mktemp)"
trap 'rm -rf "$bench_a" "$bench_b" "$bench_remote" "$trace_out" "$serve_log" \
  "$tenants_dir" "$chaos_tenants" "$chaos_serve_log" "$chaos_log" \
  "$bench_direct" "$bench_chaos"' EXIT
target/release/histctl serve --listen 127.0.0.1:0 --tenants "$chaos_tenants" \
  > "$chaos_serve_log" &
chaos_serve_pid=$!
chaos_addr=""
for _ in $(seq 100); do
  chaos_addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$chaos_serve_log" | head -1 || true)"
  [ -n "$chaos_addr" ] && break
  sleep 0.1
done
if [ -z "$chaos_addr" ]; then
  echo "error: chaos-gate serve --listen did not report a bound address" >&2
  kill "$chaos_serve_pid" 2>/dev/null || true
  exit 1
fi
target/release/histctl chaos --upstream "$chaos_addr" > "$chaos_log" &
chaos_pid=$!
proxy_addr=""
for _ in $(seq 100); do
  proxy_addr="$(grep -oE '127\.0\.0\.1:[0-9]+' "$chaos_log" | head -1 || true)"
  [ -n "$proxy_addr" ] && break
  sleep 0.1
done
if [ -z "$proxy_addr" ]; then
  echo "error: chaos proxy did not report a bound address" >&2
  kill "$chaos_pid" "$chaos_serve_pid" 2>/dev/null || true
  exit 1
fi
target/release/histctl bench --threads 1,2 --ops 150 --seed 1 --json \
  --remote "$chaos_addr" > "$bench_direct"
target/release/histctl bench --threads 1,2 --ops 150 --seed 1 --json \
  --remote "$proxy_addr" --retries 8 > "$bench_chaos"
kill -TERM "$chaos_pid"
wait "$chaos_pid"
target/release/histctl client --addr "$chaos_addr" --op shutdown > /dev/null
wait "$chaos_serve_pid"
if ! BENCH_DIRECT="$bench_direct" BENCH_CHAOS="$bench_chaos" python3 - <<'PY'
import json
import os
import sys

direct = json.load(open(os.environ["BENCH_DIRECT"]))
chaos = json.load(open(os.environ["BENCH_CHAOS"]))
dd = [(r["threads"], r["ops"], r["digest"]) for r in direct["runs"]]
dc = [(r["threads"], r["ops"], r["digest"]) for r in chaos["runs"]]
if dd != dc:
    sys.exit(f"chaotic digests differ from direct digests:\n{dd}\n{dc}")
for report, label in ((direct, "direct"), (chaos, "chaos")):
    nodelay = report.get("nodelay")
    if not nodelay or not nodelay.get("on_median_ns") or not nodelay.get("off_median_ns"):
        sys.exit(f"{label} remote report missing the nodelay latency probe: {nodelay}")
PY
then
  echo "error: chaos-convergence gate failed (digests or nodelay probe)" >&2
  exit 1
fi
if ! grep -q 'chaos proxy stopped' "$chaos_log"; then
  echo "error: SIGTERM did not stop the chaos proxy cleanly" >&2
  exit 1
fi
if ! grep -q 'checkpointed' "$chaos_serve_log"; then
  echo "error: chaos-gate shutdown did not report tenant checkpoints" >&2
  exit 1
fi

echo "==> provenance trace gate (flight-recorder dump under load)"
# A full bench run with --trace-out must produce a valid
# histctl-trace-v1 dump: the header's schema and event count, every
# required field on every event, a strictly increasing global sequence,
# and — when the recorder dropped nothing — per-thread balanced span
# opens/closes. This drives the recorder through worker threads, the
# maintenance daemon, and the WAL, and proves ring retirement keeps
# events from threads that exited before the dump.
target/release/histctl bench --threads 1,2 --ops 200 --seed 1 --json \
  --trace-out "$trace_out" > /dev/null
if ! TRACE_OUT="$trace_out" python3 - <<'PY'
import json
import os
import sys

lines = open(os.environ["TRACE_OUT"]).read().splitlines()
if not lines:
    sys.exit("empty trace dump")
header = json.loads(lines[0])
if header.get("schema") != "histctl-trace-v1":
    sys.exit(f"unexpected trace schema: {header.get('schema')}")
events = [json.loads(line) for line in lines[1:]]
if header.get("events") != len(events):
    sys.exit(f"header says {header.get('events')} events, dump has {len(events)}")
if not events:
    sys.exit("a bench run must record trace events")
last_seq = 0
open_spans = {}
for e in events:
    for field in ("seq", "ts_ns", "thread", "span", "parent", "event"):
        if field not in e:
            sys.exit(f"event missing {field}: {e}")
    if e["seq"] <= last_seq:
        sys.exit(f"global sequence not strictly increasing at {e}")
    last_seq = e["seq"]
    stack = open_spans.setdefault(e["thread"], [])
    if e["event"] == "span_open":
        stack.append(e["span"])
    elif e["event"] == "span_close":
        if e["span"] not in stack:
            if header["dropped"] == 0:
                sys.exit(f"span close without a recorded open: {e}")
        else:
            stack.remove(e["span"])
kinds = {e["event"] for e in events}
for needed in ("span_open", "span_close", "cache_hit", "daemon_sweep", "wal_append"):
    if needed not in kinds:
        sys.exit(f"bench trace missing {needed} events (got {sorted(kinds)})")
if header["dropped"] == 0:
    leftover = {t: s for t, s in open_spans.items() if s}
    if leftover:
        sys.exit(f"unbalanced span opens with zero drops: {leftover}")
PY
then
  echo "error: provenance trace gate failed (schema, ordering, or span balance)" >&2
  exit 1
fi

echo "CI gate passed."
