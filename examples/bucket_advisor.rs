//! The bucket-count advisor (§3.1): "administrators can determine the
//! minimum number of buckets required for tolerable errors" from the
//! error formula of Proposition 3.1 — no query execution needed.
//!
//! ```text
//! cargo run --release --example bucket_advisor
//! ```

use freqdist::generators::{real_life_like, MixtureParams};
use freqdist::zipf::zipf_frequencies;
use vopt_hist::advisor::{error_profile, recommend_buckets, AdvisorFamily};

fn main() {
    let distributions: Vec<(&str, Vec<u64>)> = vec![
        (
            "uniform (z=0)",
            zipf_frequencies(1000, 100, 0.0).expect("valid").into_vec(),
        ),
        (
            "zipf z=1",
            zipf_frequencies(1000, 100, 1.0).expect("valid").into_vec(),
        ),
        (
            "zipf z=2",
            zipf_frequencies(1000, 100, 2.0).expect("valid").into_vec(),
        ),
        (
            "real-life-like",
            real_life_like(&MixtureParams::default(), 9)
                .expect("valid")
                .into_vec(),
        ),
    ];

    // Error profile: how fast does the optimal error fall with β?
    println!("self-join error (S - S') of the v-optimal serial histogram:\n");
    print!("{:<16}", "distribution");
    let betas = [1usize, 2, 3, 5, 10, 20];
    for b in betas {
        print!("{:>10}", format!("beta={b}"));
    }
    println!();
    for (name, freqs) in &distributions {
        let profile = error_profile(freqs, AdvisorFamily::Serial, 20).expect("valid profile");
        print!("{name:<16}");
        for b in betas {
            let err = profile[b - 1].error;
            print!("{:>10.0}", err);
        }
        println!();
    }

    // Recommendation: buckets needed to bring the error under a target.
    let tolerance = 500.0;
    println!("\nbuckets recommended for self-join error <= {tolerance}:");
    for (name, freqs) in &distributions {
        for family in [AdvisorFamily::Serial, AdvisorFamily::EndBiased] {
            let rec = recommend_buckets(freqs, family, tolerance, 50).expect("profile");
            match rec {
                Some(r) => println!(
                    "  {name:<16} {family:?}: {} buckets (error {:.0})",
                    r.buckets, r.error
                ),
                None => println!("  {name:<16} {family:?}: >50 buckets needed"),
            }
        }
    }

    println!(
        "\nNear-uniform data needs one bucket; the more skewed the attribute,\n\
         the more buckets the advisor asks for — and end-biased histograms\n\
         need only slightly more than optimal serial ones."
    );
}
