//! Quickstart: build histograms over a skewed attribute and watch the
//! estimation error shrink.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The flow mirrors how a database system would use this library:
//! generate a relation with a Zipf-distributed attribute, collect its
//! frequency statistics in one scan (Algorithm *Matrix*), build each of
//! the paper's histogram classes, and compare their self-join size
//! estimates with the exact answer.

use freqdist::zipf::zipf_frequencies;
use query::metrics::sigma;
use query::montecarlo::{sample_self_join, HistogramSpec};
use relstore::generate::relation_from_frequency_set;
use relstore::stats::frequency_table;
use vopt_hist::RoundingMode;

fn main() {
    // A relation with 1000 tuples over 100 distinct values, Zipf z = 1.
    let freqs = zipf_frequencies(1000, 100, 1.0).expect("valid Zipf parameters");
    let relation =
        relation_from_frequency_set("orders", "customer", &freqs, 42).expect("valid frequencies");
    println!(
        "relation '{}' with {} tuples over {} distinct customers",
        relation.name(),
        relation.num_rows(),
        freqs.len()
    );

    // Statistics collection: one scan, one hash table (§3.3).
    let stats = frequency_table(&relation, "customer").expect("column exists");
    let collected = stats.frequency_set();
    let exact = collected.self_join_size();
    println!("exact self-join size S = {exact}\n");

    // Compare the five histogram classes of the paper at β = 5 buckets.
    println!(
        "{:<12} {:>14} {:>12}",
        "histogram", "sigma(S-S')", "vs trivial"
    );
    let beta = 5;
    let types = [
        HistogramSpec::Trivial,
        HistogramSpec::EquiWidth(beta),
        HistogramSpec::EquiDepth(beta),
        HistogramSpec::VOptEndBiased(beta),
        HistogramSpec::VOptSerial(beta),
    ];
    let mut trivial_sigma = None;
    for spec in types {
        let samples = sample_self_join(&collected, spec, 20, 7, RoundingMode::Exact)
            .expect("valid configuration");
        let s = sigma(&samples);
        let baseline = *trivial_sigma.get_or_insert(s);
        println!(
            "{:<12} {:>14.1} {:>11.1}%",
            spec.label(),
            s,
            100.0 * s / baseline
        );
    }

    println!(
        "\nThe v-optimal serial histogram minimises the error; the end-biased\n\
         histogram gets close at a fraction of the construction cost — the\n\
         paper's recommended trade-off."
    );
}
