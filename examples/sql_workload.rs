//! A SQL workload through the engine: parse, execute exactly, estimate
//! from catalog histograms, and report per-query Q-errors.
//!
//! ```text
//! cargo run --release --example sql_workload
//! ```
//!
//! Q-error = max(est/actual, actual/est) — the standard measure of
//! cardinality estimation quality. The same workload is estimated twice:
//! with 1-bucket (uniformity) statistics and with 10-bucket v-optimal
//! end-biased histograms.

use engine::Engine;
use freqdist::zipf::zipf_frequencies;
use freqdist::{Arrangement, FreqMatrix};
use relstore::generate::{relation_from_frequency_set, relation_from_matrix};

fn build_engine() -> Engine {
    let mut e = Engine::new();
    // orders(part), lineitem(part, supplier), suppliers(supplier)
    let orders = zipf_frequencies(20_000, 200, 1.2).expect("valid Zipf");
    e.register(relation_from_frequency_set("orders", "part", &orders, 1).expect("valid"));

    let pairs = zipf_frequencies(50_000, 200 * 50, 0.9).expect("valid Zipf");
    let arr = Arrangement::random_batch(200 * 50, 1, 9).remove(0);
    let matrix = FreqMatrix::from_arrangement(&pairs, 200, 50, &arr).expect("shape");
    let parts: Vec<u64> = (0..200).collect();
    let sups: Vec<u64> = (0..50).collect();
    e.register(
        relation_from_matrix("lineitem", "part", "supplier", &parts, &sups, &matrix, 2)
            .expect("valid"),
    );

    let suppliers = zipf_frequencies(5_000, 50, 0.4).expect("valid Zipf");
    e.register(relation_from_frequency_set("suppliers", "supplier", &suppliers, 3).expect("valid"));
    e
}

fn q_error(est: f64, actual: u128) -> f64 {
    if actual == 0 {
        return if est <= 1.0 { 1.0 } else { est };
    }
    let a = actual as f64;
    (est / a).max(a / est.max(1e-9))
}

fn main() {
    let workload = [
        "SELECT COUNT(*) FROM orders WHERE orders.part = 0",
        "SELECT COUNT(*) FROM orders WHERE orders.part BETWEEN 100 AND 150",
        "SELECT COUNT(*) FROM orders, lineitem WHERE orders.part = lineitem.part",
        "SELECT COUNT(*) FROM lineitem, suppliers \
         WHERE lineitem.supplier = suppliers.supplier AND suppliers.supplier IN (0, 1, 2)",
        "SELECT COUNT(*) FROM orders, lineitem, suppliers \
         WHERE orders.part = lineitem.part \
         AND lineitem.supplier = suppliers.supplier \
         AND orders.part <> 0",
    ];

    println!(
        "{:<4} {:>12} {:>14} {:>9} {:>14} {:>9}",
        "q", "actual", "est(beta=1)", "q-err", "est(beta=10)", "q-err"
    );

    // Two engines over identical data, analyzed at different budgets.
    let mut uniform = build_engine();
    uniform.analyze_all(1).expect("analyze");
    let mut skewed = build_engine();
    skewed.analyze_all(10).expect("analyze");

    for (i, text) in workload.iter().enumerate() {
        let q = uniform.parse(text).expect("valid query");
        let actual = uniform.execute(&q).expect("executes");
        let e1 = uniform.estimate(&q).expect("estimates");
        let e10 = skewed.estimate(&q).expect("estimates");
        println!(
            "Q{:<3} {:>12} {:>14.0} {:>8.2}x {:>14.0} {:>8.2}x",
            i + 1,
            actual,
            e1,
            q_error(e1, actual),
            e10,
            q_error(e10, actual)
        );
    }

    println!(
        "\nThe 10-bucket end-biased statistics cut the worst Q-errors of the\n\
         uniformity assumption — the paper's practicality argument, measured\n\
         on the optimizer's own yardstick."
    );

    // EXPLAIN ANALYZE of a selective 3-way join: statistics-driven join
    // order with estimated vs actual cardinalities per step. (The
    // unfiltered Q5 would materialise ~400M intermediate rows; the
    // filter keeps the demo light.)
    let q = skewed
        .parse(
            "SELECT COUNT(*) FROM orders, lineitem, suppliers \
             WHERE orders.part = lineitem.part \
             AND lineitem.supplier = suppliers.supplier \
             AND orders.part IN (0, 1, 2) AND suppliers.supplier = 0",
        )
        .expect("valid query");
    let plan = skewed.explain_analyze(&q).expect("plan executes");
    println!("\nEXPLAIN ANALYZE (beta=10):\n{plan}");
}
