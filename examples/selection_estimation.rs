//! Selections beyond equality (§2.2, §6): IN-lists, ranges, and
//! NOT-EQUALS, all encoded as indicator vectors and estimated from one
//! serial histogram.
//!
//! ```text
//! cargo run --release --example selection_estimation
//! ```

use freqdist::zipf::zipf_frequencies;
use query::selection::Selection;
use vopt_hist::{BuilderSpec, RoundingMode};

fn main() {
    // A skewed attribute over 50 values. The value indices 0..50 are the
    // attribute's natural order; Zipf ranks are assigned round-robin so
    // value order and frequency order are uncorrelated, as in real data.
    let by_rank = zipf_frequencies(10_000, 50, 1.5)
        .expect("valid Zipf")
        .into_vec();
    let mut freqs = vec![0u64; 50];
    for (rank, &f) in by_rank.iter().enumerate() {
        // rank r → value (17·r + 3) mod 50 (a fixed pseudo-random spread).
        freqs[(17 * rank + 3) % 50] = f;
    }

    let beta = 6;
    let serial = BuilderSpec::VOptSerial(beta).build(&freqs).expect("valid");
    let width = BuilderSpec::EquiWidth(beta).build(&freqs).expect("valid");

    let queries: Vec<(&str, Selection)> = vec![
        ("a = hottest", Selection::Equals(3)), // rank 0 landed at index 3
        ("a = coldest", Selection::Equals((17 * 49 + 3) % 50)),
        ("a IN {5 values}", Selection::In(vec![0, 10, 20, 30, 40])),
        ("10 <= a <= 19", Selection::Range { lo: 10, hi: 19 }),
        ("a != hottest", Selection::NotEquals(3)),
    ];

    println!(
        "{:<18} {:>8} {:>16} {:>16}",
        "selection", "actual", "serial estimate", "equi-width est."
    );
    for (name, sel) in queries {
        let actual = sel.exact_size(&freqs).expect("valid selection");
        let s_est = sel
            .estimated_size(&serial.approx_frequencies(RoundingMode::Exact))
            .expect("valid selection");
        let w_est = sel
            .estimated_size(&width.approx_frequencies(RoundingMode::Exact))
            .expect("valid selection");
        println!("{name:<18} {actual:>8} {s_est:>16.1} {w_est:>16.1}");
    }

    println!(
        "\nThe serial histogram isolates the hot values, so point and range\n\
         predicates over cold regions stop inheriting the hot values' mass;\n\
         the equi-width histogram smears them together (§6: serial histograms\n\
         are v-optimal for general selections too)."
    );
}
