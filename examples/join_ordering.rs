//! Closing the loop with the optimizer: do better histograms pick better
//! join orders?
//!
//! ```text
//! cargo run --release --example join_ordering
//! ```
//!
//! A 5-relation chain query is planned three times — with trivial
//! histograms (the uniformity assumption), with v-optimal end-biased
//! histograms, and with the true sizes — and each chosen plan is costed
//! under the *true* intermediate sizes. The paper's motivation in one
//! table: estimation error turns directly into plan regret.

use freqdist::zipf::zipf_frequencies;
use freqdist::{Arrangement, FreqMatrix};
use query::planner::{estimated_segment_sizes, exact_segment_sizes, optimal_plan, plan_cost};
use query::{ChainQuery, RelationStats};
use vopt_hist::{BuilderSpec, MatrixHistogram, RoundingMode};

fn main() {
    // Build a 5-relation chain with mixed skews; arrangements are seeded
    // so the run is reproducible.
    let m = 8usize;
    let zs = [1.5, 0.2, 2.0, 0.8, 1.2];
    let mut mats = Vec::new();
    mats.push(FreqMatrix::horizontal(
        zipf_frequencies(1000, m, zs[0])
            .expect("valid Zipf")
            .into_vec(),
    ));
    for (k, &z) in zs[1..4].iter().enumerate() {
        let freqs = zipf_frequencies(1000, m * m, z).expect("valid Zipf");
        let arr = Arrangement::random_batch(m * m, 1, 7 + k as u64).remove(0);
        mats.push(FreqMatrix::from_arrangement(&freqs, m, m, &arr).expect("square"));
    }
    mats.push(FreqMatrix::vertical(
        zipf_frequencies(1000, m, zs[4])
            .expect("valid Zipf")
            .into_vec(),
    ));
    let query = ChainQuery::new(mats).expect("valid chain");

    let stats_with = |beta: Option<usize>| -> Vec<RelationStats> {
        query
            .matrices()
            .iter()
            .map(|mat| {
                let spec = match beta {
                    None => BuilderSpec::Trivial,
                    Some(b) => BuilderSpec::VOptEndBiased(b),
                };
                let build = |cells: &[u64]| spec.build(cells);
                if mat.rows() == 1 || mat.cols() == 1 {
                    RelationStats::Vector(build(mat.cells()).expect("valid"))
                } else {
                    RelationStats::Matrix(MatrixHistogram::build(mat, build).expect("valid"))
                }
            })
            .collect()
    };

    let exact = exact_segment_sizes(&query).expect("sizes");
    let true_best = optimal_plan(&exact);

    println!(
        "true optimal plan: {}   (cost {:.3e})\n",
        true_best.tree.render(),
        true_best.cost
    );
    println!(
        "{:<22} {:<22} {:>14} {:>8}",
        "statistics", "chosen plan", "true cost", "regret"
    );

    let report = |name: &str, stats: Option<Vec<RelationStats>>| {
        let sizes = match &stats {
            None => exact.clone(),
            Some(s) => estimated_segment_sizes(&query, s, RoundingMode::Exact).expect("sizes"),
        };
        let plan = optimal_plan(&sizes);
        let true_cost = plan_cost(&plan.tree, &exact);
        println!(
            "{:<22} {:<22} {:>14.3e} {:>7.2}x",
            name,
            plan.tree.render(),
            true_cost,
            true_cost / true_best.cost
        );
    };

    report("trivial (uniformity)", Some(stats_with(None)));
    report("end-biased beta=3", Some(stats_with(Some(3))));
    report("end-biased beta=8", Some(stats_with(Some(8))));
    report("exact sizes", None);

    println!(
        "\nRegret = (true cost of the chosen plan) / (true cost of the best\n\
         plan). Histograms that capture the skew steer the optimizer to\n\
         cheaper join orders."
    );
}
