//! The system path: ANALYZE relations into a statistics catalog, persist
//! the histograms with the binary codec, and estimate join and selection
//! sizes the way a query optimizer would — then compare against the real
//! answers produced by actually executing the joins.
//!
//! ```text
//! cargo run --release --example optimizer_catalog
//! ```

use freqdist::zipf::zipf_frequencies;
use query::estimate::{estimate_equality, estimate_two_way_join};
use relstore::codec::{decode_histogram, encode_histogram};
use relstore::generate::relation_from_frequency_set;
use relstore::join::hash_join_count;
use relstore::Catalog;
use vopt_hist::BuilderSpec;

fn main() {
    // Two relations joining on "part": orders is heavily skewed, stock is
    // mildly skewed.
    let orders_freqs = zipf_frequencies(20_000, 500, 1.2).expect("valid Zipf");
    let stock_freqs = zipf_frequencies(5_000, 500, 0.4).expect("valid Zipf");
    let orders = relation_from_frequency_set("orders", "part", &orders_freqs, 1).expect("valid");
    let stock = relation_from_frequency_set("stock", "part", &stock_freqs, 2).expect("valid");

    // ANALYZE: collect frequencies and store the histogram the builder
    // spec describes — v-optimal end-biased, β = 10, DB2-style. Swapping
    // the whole pipeline to another class is a one-word change here.
    let spec = BuilderSpec::VOptEndBiased(10);
    let catalog = Catalog::new();
    let orders_key = catalog
        .analyze(&orders, "part", spec)
        .expect("analyze orders");
    let stock_key = catalog
        .analyze(&stock, "part", spec)
        .expect("analyze stock");

    // Persist and reload through the binary codec, as a catalog table
    // would.
    let stored_orders = catalog.get(&orders_key).expect("present");
    let bytes = encode_histogram(&stored_orders);
    println!(
        "orders histogram: {} buckets, {} catalog entries, {} bytes on disk",
        stored_orders.num_buckets(),
        stored_orders.storage_entries(),
        bytes.len()
    );
    let reloaded = decode_histogram(bytes).expect("codec round trip");
    assert_eq!(reloaded, stored_orders);
    let stored_stock = catalog.get(&stock_key).expect("present");

    // Optimizer asks: |orders ⋈ stock|?
    let domain: Vec<u64> = (0..500).collect();
    let estimate = estimate_two_way_join(&reloaded, &stored_stock, &domain);
    let actual = hash_join_count(&orders, "part", &stock, "part").expect("join");
    println!("\njoin size:  estimated {estimate:.0}   actual {actual}");
    println!(
        "relative error: {:.1}%",
        100.0 * (estimate - actual as f64).abs() / actual as f64
    );

    // Optimizer asks: |σ part=p orders| for a hot and a cold part.
    println!("\nselection estimates (orders.part):");
    for part in [0u64, 250, 499] {
        let est = estimate_equality(&reloaded, part);
        let truth = orders
            .column_by_name("part")
            .expect("column exists")
            .iter()
            .filter(|&&v| v == part)
            .count();
        println!("  part={part:<4} estimated {est:>7.0}   actual {truth:>6}");
    }

    // Updates make statistics stale; the catalog tracks how stale.
    catalog.note_updates("orders", 1500);
    println!(
        "\nafter 1500 updates, orders histogram staleness = {} tuples",
        catalog.staleness(&orders_key).expect("present")
    );
}
