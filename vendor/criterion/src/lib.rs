//! Offline minimal criterion-compatible micro-benchmark harness.
//!
//! Implements the slice of the criterion API the bench crate uses —
//! `Criterion`, `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros —
//! as a real (if spartan) harness: each benchmark runs a warmup pass
//! then `sample_size` timed samples and prints min/median/mean wall
//! time, plus throughput when declared. There are no plots, baselines,
//! or statistical tests; the point is that `cargo bench` runs offline
//! and prints honest numbers.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Declared work per iteration, used for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: function name and/or parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function label and a parameter.
    pub fn new<S: Display, P: Display>(function: S, parameter: P) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once as warmup, then `sample_size` timed samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, samples: &mut [Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<55} (no samples)");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = throughput
        .map(|t| {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = n as f64 / median.as_secs_f64();
            format!("  ({per_sec:.3e} {unit}/s)")
        })
        .unwrap_or_default();
    println!(
        "{name:<55} min {:>10}  median {:>10}  mean {:>10}{rate}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
}

/// A named group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `routine` against `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        let full = format!("{}/{}", self.name, id.label);
        report(&full, &mut b.samples, self.throughput);
    }

    /// Ends the group (all reporting already happened inline).
    pub fn finish(self) {}
}

/// The harness entry point handed to each benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmarks a single routine under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        f(&mut b);
        report(name, &mut b.samples, None);
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("smoke/group");
        g.sample_size(5).throughput(Throughput::Elements(100));
        g.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
