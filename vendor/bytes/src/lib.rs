//! Offline drop-in subset of the `bytes` API.
//!
//! Provides [`Bytes`] (a cheaply-cloneable, sliceable view over shared
//! immutable bytes), [`BytesMut`] (a growable buffer), and the little
//! slices of the [`Buf`]/[`BufMut`] traits the workspace codec uses.
//! `Bytes` is an `Arc<[u8]>` plus a window, so `clone` and `split_to`
//! are O(1) and never copy.

#![warn(missing_docs)]

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, sliceable chunk of immutable bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies `slice` into a new `Bytes`.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Self::from(slice.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len(),
            "split_to({at}) out of bounds of {}",
            self.len()
        );
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Returns a subslice view `range` of this view.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.data), f)
    }
}

/// Read access to a contiguous cursor of bytes (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies bytes from the cursor into `dst`, advancing.
    ///
    /// # Panics
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads a little-endian `u16`, advancing.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`, advancing.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads one byte, advancing.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance({cnt}) out of bounds of {}",
            self.len()
        );
        self.start += cnt;
    }
}

/// Write access to a growable byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends `src` to the buffer.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ints() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16_le(7);
        b.put_u32_le(42);
        b.put_u64_le(u64::MAX);
        b.put_slice(b"xy");
        let mut r = b.freeze();
        assert_eq!(r.len(), 16);
        assert_eq!(r.get_u16_le(), 7);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.get_u64_le(), u64::MAX);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(!r.has_remaining());
    }

    #[test]
    fn split_to_is_a_window() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(b.slice(1..3), Bytes::from(vec![4, 5]));
    }

    #[test]
    #[should_panic]
    fn copy_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let mut dst = [0u8; 2];
        b.copy_to_slice(&mut dst);
    }

    #[test]
    fn equality_ignores_window_offsets() {
        let mut a = Bytes::from(vec![9, 1, 2]);
        let _ = a.split_to(1);
        assert_eq!(a, Bytes::from(vec![1, 2]));
        assert_eq!(format!("{a:?}"), "b\"\\x01\\x02\"");
    }
}
