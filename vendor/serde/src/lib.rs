//! Offline drop-in subset of the `serde` facade.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives (under the
//! usual `derive` feature) and defines a deliberately small,
//! infallible [`ser`] layer: a [`Serializer`](ser::Serializer) driven
//! by [`Serialize`](ser::Serialize) impls. The observability crate
//! implements its JSON exposition on top of these traits, so swapping
//! in real serde later only means widening the trait surface.

#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    //! Minimal event-driven serialisation traits.

    /// Receives serialisation events (a tiny, infallible cousin of
    /// `serde::Serializer`; obs's JSON writer implements this).
    pub trait Serializer {
        /// Serialises a boolean.
        fn serialize_bool(&mut self, v: bool);
        /// Serialises a signed integer.
        fn serialize_i64(&mut self, v: i64);
        /// Serialises an unsigned integer.
        fn serialize_u64(&mut self, v: u64);
        /// Serialises a float.
        fn serialize_f64(&mut self, v: f64);
        /// Serialises a string.
        fn serialize_str(&mut self, v: &str);
        /// Serialises a unit/null value.
        fn serialize_unit(&mut self);
        /// Opens a sequence of `len` elements.
        fn begin_seq(&mut self, len: usize);
        /// Announces the next sequence element.
        fn seq_element(&mut self);
        /// Closes the current sequence.
        fn end_seq(&mut self);
        /// Opens a map of `len` entries.
        fn begin_map(&mut self, len: usize);
        /// Announces the next entry's key.
        fn map_key(&mut self, key: &str);
        /// Closes the current map.
        fn end_map(&mut self);
    }

    /// A value that can drive a [`Serializer`].
    pub trait Serialize {
        /// Feeds this value's structure into `s`.
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S);
    }

    impl Serialize for bool {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            s.serialize_bool(*self);
        }
    }

    impl Serialize for u64 {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            s.serialize_u64(*self);
        }
    }

    impl Serialize for usize {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            s.serialize_u64(*self as u64);
        }
    }

    impl Serialize for i64 {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            s.serialize_i64(*self);
        }
    }

    impl Serialize for f64 {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            s.serialize_f64(*self);
        }
    }

    impl Serialize for str {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            s.serialize_str(self);
        }
    }

    impl Serialize for String {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            s.serialize_str(self);
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            s.begin_seq(self.len());
            for item in self {
                s.seq_element();
                item.serialize(s);
            }
            s.end_seq();
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            match self {
                Some(v) => v.serialize(s),
                None => s.serialize_unit(),
            }
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize<S: Serializer + ?Sized>(&self, s: &mut S) {
            (**self).serialize(s);
        }
    }
}

// Macro (above) and trait share the `serde::Serialize` name in their
// separate namespaces, exactly as in real serde.
pub use ser::{Serialize, Serializer};
