//! Offline drop-in subset of the `crossbeam` API.
//!
//! Three pieces are vendored: [`thread::scope`] (scoped fork-join
//! threads with crossbeam's `Result`-returning panic contract, layered
//! over `std::thread::scope`), [`queue::ArrayQueue`] (a bounded
//! lock-free MPMC queue using Vyukov's sequence-number ring, the
//! backing store for the observability event ring buffer), and
//! [`channel`] (an unbounded MPMC channel with crossbeam's
//! disconnection semantics and `recv_timeout`, the control plane of the
//! statistics maintenance daemon).

#![warn(missing_docs)]

pub mod thread {
    //! Scoped threads with crossbeam's interface.
    //!
    //! `scope(|s| ...)` returns `Err` (instead of unwinding) when the
    //! closure or any spawned worker panics; worker closures receive a
    //! `&Scope` so they can spawn siblings.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` carries the panic payload if the
    /// closure or any unjoined spawned thread panicked.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle for spawning threads tied to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives this scope so
        /// nested spawns are possible (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = Scope { inner: self.inner };
            self.inner.spawn(move || f(&handle))
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined
    /// before this returns. Panics (in `f` or in workers) surface as
    /// `Err` rather than unwinding.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod queue {
    //! Bounded lock-free queues.

    use std::cell::UnsafeCell;
    use std::fmt;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// One ring slot: `seq` encodes whose turn the slot is on.
    ///
    /// Invariant (Vyukov): `seq == index` means free for the producer
    /// whose ticket is `index`; `seq == index + 1` means occupied for
    /// the consumer whose ticket is `index`; after a pop the slot is
    /// re-armed with `seq = index + capacity` for the next lap.
    struct Slot<T> {
        seq: AtomicUsize,
        value: UnsafeCell<MaybeUninit<T>>,
    }

    /// A bounded MPMC queue (subset of `crossbeam::queue::ArrayQueue`).
    pub struct ArrayQueue<T> {
        head: AtomicUsize,
        tail: AtomicUsize,
        buffer: Box<[Slot<T>]>,
        cap: usize,
    }

    unsafe impl<T: Send> Send for ArrayQueue<T> {}
    unsafe impl<T: Send> Sync for ArrayQueue<T> {}

    impl<T> ArrayQueue<T> {
        /// Creates a queue holding at most `cap` elements.
        ///
        /// # Panics
        /// Panics if `cap` is zero.
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "ArrayQueue capacity must be non-zero");
            let buffer = (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect();
            Self {
                head: AtomicUsize::new(0),
                tail: AtomicUsize::new(0),
                buffer,
                cap,
            }
        }

        /// Maximum number of elements the queue holds.
        pub fn capacity(&self) -> usize {
            self.cap
        }

        /// Current element count (a snapshot; racy under contention).
        pub fn len(&self) -> usize {
            let tail = self.tail.load(Ordering::SeqCst);
            let head = self.head.load(Ordering::SeqCst);
            tail.saturating_sub(head)
        }

        /// Whether the queue currently holds no elements.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Attempts to enqueue; returns the value back if the queue is
        /// full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut tail = self.tail.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[tail % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == tail {
                    match self.tail.compare_exchange_weak(
                        tail,
                        tail + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            unsafe { (*slot.value.get()).write(value) };
                            slot.seq.store(tail + 1, Ordering::Release);
                            return Ok(());
                        }
                        Err(current) => tail = current,
                    }
                } else if seq < tail {
                    // The slot still holds an element a whole lap old:
                    // the ring is full.
                    return Err(value);
                } else {
                    tail = self.tail.load(Ordering::Relaxed);
                }
            }
        }

        /// Dequeues the oldest element, if any.
        pub fn pop(&self) -> Option<T> {
            let mut head = self.head.load(Ordering::Relaxed);
            loop {
                let slot = &self.buffer[head % self.cap];
                let seq = slot.seq.load(Ordering::Acquire);
                if seq == head + 1 {
                    match self.head.compare_exchange_weak(
                        head,
                        head + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            let value = unsafe { (*slot.value.get()).assume_init_read() };
                            slot.seq.store(head + self.cap, Ordering::Release);
                            return Some(value);
                        }
                        Err(current) => head = current,
                    }
                } else if seq <= head {
                    // Producer hasn't filled this slot: the ring is
                    // empty.
                    return None;
                } else {
                    head = self.head.load(Ordering::Relaxed);
                }
            }
        }

        /// Enqueues unconditionally, evicting the oldest element when
        /// full; returns the evicted element if one was displaced.
        pub fn force_push(&self, value: T) -> Option<T> {
            let mut value = value;
            let mut displaced = None;
            loop {
                match self.push(value) {
                    Ok(()) => return displaced,
                    Err(v) => {
                        value = v;
                        if let Some(old) = self.pop() {
                            displaced = Some(old);
                        }
                    }
                }
            }
        }
    }

    impl<T> Drop for ArrayQueue<T> {
        fn drop(&mut self) {
            while self.pop().is_some() {}
        }
    }

    impl<T> fmt::Debug for ArrayQueue<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("ArrayQueue")
                .field("cap", &self.cap)
                .field("len", &self.len())
                .finish()
        }
    }
}

pub mod channel {
    //! Unbounded MPMC channels (subset of `crossbeam::channel`).
    //!
    //! Built on a `Mutex<VecDeque>` + `Condvar` rather than a lock-free
    //! list: the workspace uses channels as a low-rate control plane
    //! (daemon commands, shutdown), where the mutex is never contended
    //! enough to matter and the blocking/timeout semantics come for
    //! free from the condvar. Disconnection follows crossbeam: a
    //! receive on a channel whose senders are all dropped drains the
    //! buffer first, then errors.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        buffer: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error of [`Sender::send`]: every receiver is gone, value
    /// returned to the caller.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error of [`Receiver::recv`]: the buffer is empty and every
    /// sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Buffer empty right now; senders may still produce.
        Empty,
        /// Buffer empty and every sender dropped.
        Disconnected,
    }

    /// Error of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with nothing received.
        Timeout,
        /// Buffer empty and every sender dropped.
        Disconnected,
    }

    /// The producing half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The consuming half; clone freely (each message is delivered to
    /// exactly one receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                buffer: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver. Fails (and
        /// hands the value back) only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.buffer.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            state.senders -= 1;
            let disconnected = state.senders == 0;
            drop(state);
            if disconnected {
                // Blocked receivers must wake to observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            match state.buffer.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            loop {
                if let Some(v) = state.buffer.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .expect("channel lock poisoned");
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.queue.lock().expect("channel lock poisoned");
            loop {
                if let Some(v) = state.buffer.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .expect("channel lock poisoned");
                state = next;
                if timed_out.timed_out() && state.buffer.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .expect("channel lock poisoned")
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::ArrayQueue;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_joins_and_returns() {
        let total = AtomicU64::new(0);
        let r = crate::thread::scope(|s| {
            for i in 0..8u64 {
                let total = &total;
                s.spawn(move |_| total.fetch_add(i, Ordering::Relaxed));
            }
            "done"
        });
        assert_eq!(r.unwrap(), "done");
        assert_eq!(total.load(Ordering::Relaxed), 28);
    }

    #[test]
    fn scope_worker_panic_is_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn queue_fifo_and_full() {
        let q = ArrayQueue::new(3);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert!(q.push(3).is_ok());
        assert_eq!(q.push(4), Err(4));
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(4).is_ok());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_force_push_evicts_oldest() {
        let q = ArrayQueue::new(2);
        assert_eq!(q.force_push(1), None);
        assert_eq!(q.force_push(2), None);
        assert_eq!(q.force_push(3), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn queue_concurrent_producers_consumers() {
        const PER_THREAD: u64 = 10_000;
        let q = ArrayQueue::new(64);
        let sum = AtomicU64::new(0);
        let received = AtomicU64::new(0);
        crate::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                s.spawn(move |_| {
                    for i in 0..PER_THREAD {
                        let mut v = t * PER_THREAD + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..4 {
                let (q, sum, received) = (&q, &sum, &received);
                s.spawn(move |_| loop {
                    if received.load(Ordering::Relaxed) >= 4 * PER_THREAD {
                        break;
                    }
                    match q.pop() {
                        Some(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            received.fetch_add(1, Ordering::Relaxed);
                        }
                        None => std::hint::spin_loop(),
                    }
                });
            }
        })
        .unwrap();
        let n = 4 * PER_THREAD;
        assert_eq!(received.load(Ordering::Relaxed), n);
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}

#[cfg(test)]
mod channel_tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn dropping_senders_disconnects_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn dropping_receiver_fails_send() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        crate::thread::scope(|s| {
            for t in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..100u64 {
                        tx.send(t * 100 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<u64> = Vec::new();
            while let Ok(v) = rx.recv() {
                got.push(v);
            }
            got.sort_unstable();
            assert_eq!(got, (0..400).collect::<Vec<_>>());
        })
        .unwrap();
    }
}
