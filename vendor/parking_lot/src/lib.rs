//! Offline drop-in subset of the `parking_lot` API.
//!
//! The build environment has no access to a crate registry, so the
//! workspace vendors the small slice of `parking_lot` it actually uses:
//! [`Mutex`] and [`RwLock`] with the poison-free locking interface
//! (`lock()` / `read()` / `write()` return guards directly, never a
//! `Result`). Internally these wrap `std::sync` primitives and recover
//! from poisoning by taking the inner guard — matching `parking_lot`'s
//! semantics, where a panicking lock holder never poisons the lock.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive with the `parking_lot` interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with the `parking_lot` interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
