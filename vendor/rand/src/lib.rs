//! Offline drop-in subset of the `rand` API.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`SeedableRng`]/[`RngExt`] traits with
//! `seed_from_u64`, `random`, and `random_range`, and
//! [`seq::SliceRandom`] with a Fisher–Yates `shuffle`. Every stream is
//! fully determined by the seed, which is all the workspace relies on —
//! there is no OS entropy source here.

#![warn(missing_docs)]

use std::ops::{Bound, RangeBounds};

/// A source of uniformly distributed `u64` values.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructing an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed (expanded with
    /// SplitMix64, so nearby seeds give unrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64
            // cannot produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types drawable uniformly from their "natural" distribution via
/// [`RngExt::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Draws a uniform value in `[0, width)` without modulo bias.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    if width.is_power_of_two() {
        return rng.next_u64() & (width - 1);
    }
    // Reject the top partial copy of [0, width) in u64 space.
    let reject_above = u64::MAX - (u64::MAX % width + 1) % width;
    loop {
        let x = rng.next_u64();
        if x <= reject_above {
            return x % width;
        }
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the inclusive range `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The predecessor of `v`, for converting exclusive upper bounds.
    fn down_one(v: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                // Width of [lo, hi] as u64; full-width ranges wrap to 0.
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(uniform_below(rng, width)) as $t
            }
            fn down_one(v: Self) -> Self {
                v - 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience draws available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws one value from `T`'s standard distribution (`f64` is
    /// uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform draw from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        Self: Sized,
        T: SampleUniform,
        B: RangeBounds<T>,
    {
        let lo = match range.start_bound() {
            Bound::Included(&lo) => lo,
            Bound::Excluded(_) | Bound::Unbounded => {
                panic!("random_range requires an inclusive lower bound")
            }
        };
        let hi = match range.end_bound() {
            Bound::Included(&hi) => hi,
            Bound::Excluded(&hi) => {
                assert!(lo < hi, "cannot sample from an empty range");
                T::down_one(hi)
            }
            Bound::Unbounded => panic!("random_range requires an upper bound"),
        };
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(self, lo, hi)
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(5..=9);
            assert!((5..=9).contains(&v));
            let w: usize = rng.random_range(0..3);
            assert!(w < 3);
            let s: i32 = rng.random_range(-4..=4);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn random_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(11);
        v.shuffle(&mut rng);
        let mut w: Vec<usize> = (0..50).collect();
        let mut rng2 = StdRng::seed_from_u64(11);
        w.shuffle(&mut rng2);
        assert_eq!(v, w);
        assert_ne!(v, (0..50).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.random_range(3..3);
    }
}
