//! Offline no-op `Serialize`/`Deserialize` derive macros.
//!
//! The workspace marks its data types `#[derive(Serialize,
//! Deserialize)]` to declare serialisability, but no code path drives a
//! serde data format (the binary codec in `relstore` is hand-rolled).
//! These derives therefore expand to nothing: the attribute stays
//! valid, compilation needs no registry access, and any future real
//! serde can be dropped in without touching the annotated types.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
