//! Offline mini property-testing framework with the `proptest` macro
//! surface the workspace uses.
//!
//! Differences from real proptest, by design: no shrinking (a failing
//! case is reported with the exact inputs, which are reproducible
//! because every test's RNG is seeded from its name), and strategies
//! are simple samplers — a [`strategy::Strategy`] is anything that can
//! draw a value from a seeded RNG. The supported surface is exactly
//! what the repo's property tests exercise: integer/float range
//! strategies, a regex-subset string strategy, `prop_map` /
//! `prop_filter` / `prop_flat_map`, tuple and `Vec` composition,
//! `prop::collection::vec`, `any::<T>()`, `Just`, `prop_oneof!`, and
//! the `proptest!` / `prop_assert*` / `prop_assume!` macros.

pub mod strategy {
    //! Strategies: seeded samplers for test inputs.

    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// The RNG handed to strategies (seeded per test from its name).
    pub type TestRng = StdRng;

    /// A sampler of test inputs.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Rejects values failing `pred` (resamples; panics after too
        /// many consecutive rejections).
        fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
            self,
            reason: R,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }

        /// Builds a dependent strategy from each sampled value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter({:?}) rejected 10000 consecutive samples",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.random_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.random::<f64>() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+ );)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::sample_pattern(self, rng)
        }
    }
}

pub mod string {
    //! A regex-subset string strategy: concatenations of literal
    //! characters and character classes (`[a-z0-9_]`, ranges and
    //! literals; no negation or escapes), each optionally repeated with
    //! `{n}` or `{m,n}`.

    use crate::strategy::TestRng;
    use rand::RngExt;

    struct Element {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Element> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let close = chars[i + 1..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                        + i
                        + 1;
                    let body = &chars[i + 1..close];
                    let mut alphabet = Vec::new();
                    let mut j = 0;
                    while j < body.len() {
                        if j + 2 < body.len() && body[j + 1] == '-' {
                            let (lo, hi) = (body[j], body[j + 2]);
                            assert!(lo <= hi, "bad class range in {pattern:?}");
                            alphabet.extend((lo..=hi).filter(|c| c.is_ascii()));
                            j += 3;
                        } else {
                            alphabet.push(body[j]);
                            j += 1;
                        }
                    }
                    i = close + 1;
                    alphabet
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                    + i
                    + 1;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad repeat lower bound"),
                        hi.trim().parse().expect("bad repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
            out.push(Element {
                chars: alphabet,
                min,
                max,
            });
        }
        out
    }

    /// Draws one string matching `pattern`.
    pub fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for el in parse(pattern) {
            let n = rng.random_range(el.min..=el.max);
            for _ in 0..n {
                out.push(el.chars[rng.random_range(0..el.chars.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()`: the type's full-range "natural" strategy.

    use crate::strategy::{Strategy, TestRng};
    use rand::{RngCore, RngExt};
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random::<f64>()
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (full integer range, unit-interval
    /// floats).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.random_range(self.size.min..=self.size.max);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, size)`: vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The per-test case loop.

    use crate::strategy::TestRng;
    use rand::SeedableRng;

    /// Loads the persisted regression seeds for a test file.
    ///
    /// `file` is the `file!()` path of the test source (relative to the
    /// workspace root, where cargo invokes rustc); the corpus lives next
    /// to it as `<stem>.proptest-regressions`, one `cc <hex>` line per
    /// saved failure, as real proptest writes them. The test binary runs
    /// with the *package* directory as CWD, so the path is tried as
    /// given and then two levels up. A missing file simply means no
    /// saved regressions.
    fn regression_seeds(file: &str) -> Vec<u64> {
        let corpus = match file.strip_suffix(".rs") {
            Some(stem) => format!("{stem}.proptest-regressions"),
            None => return Vec::new(),
        };
        let content = std::fs::read_to_string(&corpus)
            .or_else(|_| std::fs::read_to_string(format!("../../{corpus}")));
        let Ok(content) = content else {
            return Vec::new();
        };
        parse_corpus(&content)
    }

    /// Parses `cc <hex>` corpus lines into replay seeds (comments and
    /// malformed lines are ignored, matching real proptest's tolerance).
    pub(crate) fn parse_corpus(content: &str) -> Vec<u64> {
        content
            .lines()
            .filter_map(|line| {
                let line = line.trim();
                let hex = line.strip_prefix("cc ")?.split_whitespace().next()?;
                // Fold the persisted 256-bit case hash down to the u64
                // our RNG seeds from: XOR of its 16-hex-digit chunks.
                let mut seed = 0u64;
                let mut chunk = 0u64;
                let mut digits = 0u32;
                for c in hex.chars() {
                    chunk = (chunk << 4) | c.to_digit(16)? as u64;
                    digits += 1;
                    if digits.is_multiple_of(16) {
                        seed ^= chunk;
                        chunk = 0;
                    }
                }
                Some(seed ^ chunk)
            })
            .collect()
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is resampled.
        Reject(String),
        /// A `prop_assert*` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: String) -> Self {
            Self::Fail(msg)
        }
        /// A rejected (re-drawn) case.
        pub fn reject(msg: String) -> Self {
            Self::Reject(msg)
        }
    }

    /// Runs a property over many sampled cases.
    pub struct TestRunner {
        cases: u32,
        max_rejects: u32,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self {
                cases,
                max_rejects: cases.saturating_mul(64).max(1024),
            }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    impl TestRunner {
        /// Runs `f` until `cases` samples pass (or one fails). `f`
        /// returns the case's rendered inputs plus its outcome; the RNG
        /// is seeded from `name` so failures reproduce exactly.
        pub fn run<F>(&mut self, name: &str, f: F)
        where
            F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
        {
            self.run_in_file("", name, f)
        }

        /// Like [`TestRunner::run`], but first replays every seed in the
        /// file's persisted `.proptest-regressions` corpus (if any)
        /// before generating novel cases — so a once-found failure stays
        /// fixed for everyone who checks out the corpus. Rejections
        /// during replay are skipped (the regression may predate a
        /// strategy change); failures panic with the regression seed in
        /// the message.
        pub fn run_in_file<F>(&mut self, file: &str, name: &str, mut f: F)
        where
            F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
        {
            for seed in regression_seeds(file) {
                let mut rng = TestRng::seed_from_u64(seed ^ fnv1a(name));
                let (inputs, outcome) = f(&mut rng);
                if let Err(TestCaseError::Fail(msg)) = outcome {
                    panic!(
                        "property '{name}' failed on persisted regression \
                         {seed:#018x}\n  inputs: {inputs}\n  {msg}"
                    );
                }
            }
            let mut rng = TestRng::seed_from_u64(fnv1a(name));
            let mut accepted = 0;
            let mut rejected = 0u32;
            while accepted < self.cases {
                let (inputs, outcome) = f(&mut rng);
                match outcome {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject(why)) => {
                        rejected += 1;
                        if rejected > self.max_rejects {
                            panic!(
                                "property '{name}': {rejected} rejections \
                                 (last: {why}); prop_assume is too strict"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property '{name}' failed after {accepted} passing cases\
                             \n  inputs: {inputs}\n  {msg}"
                        );
                    }
                }
            }
        }
    }
}

pub mod prop {
    //! `prop::` namespace as re-exported by the prelude.
    pub use crate::collection;
}

pub mod prelude {
    //! Everything a property-test file imports.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`
/// items each become a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::default();
                runner.run_in_file(file!(), stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                    let inputs = [
                        $(format!("{} = {:?}", stringify!($arg), &$arg)),+
                    ].join(", ");
                    let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    (inputs, outcome)
                });
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n    left: {:?}\n   right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the current case if the two sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n    both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects (re-draws) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..10, y in 0usize..=4, z in 0.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((0.5..2.5).contains(&z));
        }

        #[test]
        fn vec_sizes_and_filter(v in prop::collection::vec(0u32..100, 2..=6)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u64..10, b in 0u64..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn regex_subset_patterns(s in "[a-z][a-z0-9_]{0,6}", t in "[ -~]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(t.len() <= 8);
            prop_assert!(t.chars().all(|c| (' '..='~').contains(&c)));
        }

        #[test]
        fn combinators_compose(v in prop_oneof![
            (0u64..5).prop_map(|x| x * 2),
            (10u64..15).prop_filter("nonzero", |&x| x > 0),
            Just(100u64),
        ]) {
            prop_assert!(v % 2 == 0 && v < 10 || (10..15).contains(&v) || v == 100);
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u32..10, n))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn corpus_parsing_folds_case_hashes() {
        let content = "# comment line\n\
                       cc 7038a83dab1aff6122f07b889b285b7b7f561526e58445dab55f57eb766cec1b # shrinks to x = 0\n\
                       cc 00000000000000010000000000000002\n\
                       not a corpus line\n\
                       cc 0x\n";
        let seeds = crate::test_runner::parse_corpus(content);
        assert_eq!(seeds.len(), 2, "{seeds:?}");
        assert_eq!(
            seeds[0],
            0x7038_a83d_ab1a_ff61
                ^ 0x22f0_7b88_9b28_5b7b
                ^ 0x7f56_1526_e584_45da
                ^ 0xb55f_57eb_766c_ec1b
        );
        assert_eq!(seeds[1], 3);
    }

    #[test]
    #[should_panic(expected = "persisted regression")]
    fn regression_replay_failures_name_the_seed() {
        // Build a corpus under the OS tmpdir and point the runner at it
        // with a property that always fails: the panic must say which
        // regression seed reproduced the failure.
        let dir = std::env::temp_dir().join("proptest_corpus_test");
        std::fs::create_dir_all(&dir).expect("create corpus dir");
        let source = dir.join("fake_test.rs");
        let corpus = dir.join("fake_test.proptest-regressions");
        std::fs::write(&corpus, "cc 000000000000002a\n").expect("write corpus");
        let mut runner = crate::test_runner::TestRunner::default();
        runner.run_in_file(source.to_str().unwrap(), "always_fails_on_replay", |rng| {
            let x = crate::strategy::Strategy::sample(&(0u64..10), rng);
            (
                format!("x = {x:?}"),
                Err(crate::test_runner::TestCaseError::fail("nope".into())),
            )
        });
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failure_reports_inputs() {
        let mut runner = crate::test_runner::TestRunner::default();
        runner.run("always_fails", |rng| {
            let x = crate::strategy::Strategy::sample(&(0u64..10), rng);
            (
                format!("x = {x:?}"),
                Err(crate::test_runner::TestCaseError::fail("nope".into())),
            )
        });
    }
}
