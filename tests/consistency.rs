//! Theorem 2.1 cross-check: the frequency-matrix chain product equals
//! the cardinality obtained by actually executing the joins over
//! materialised tuples.

use freqdist::zipf::zipf_frequencies;
use freqdist::{chain_product, Arrangement, FreqMatrix, FrequencySet};
use relstore::generate::{relation_from_frequencies, relation_from_matrix};
use relstore::join::{chain_join_count, hash_join_count};
use relstore::joint::joint_frequency_table;
use relstore::stats::{frequency_matrix_table, frequency_table};

/// 2-way join: matrix product == hash-join execution == joint-frequency
/// table, across several skews.
#[test]
fn two_way_join_sizes_agree() {
    for (i, &z) in [0.0, 0.5, 1.0, 2.0].iter().enumerate() {
        let m = 40;
        let values: Vec<u64> = (0..m as u64).collect();
        let f0 = zipf_frequencies(500, m, z).unwrap();
        let f1 = zipf_frequencies(800, m, 1.0).unwrap();
        // Shuffle which domain value carries which frequency.
        let a0 = Arrangement::random_batch(m, 1, 100 + i as u64).remove(0);
        let a1 = Arrangement::random_batch(m, 1, 200 + i as u64).remove(0);
        let f0_arranged = FrequencySet::new(a0.apply(f0.as_slice()).unwrap());
        let f1_arranged = FrequencySet::new(a1.apply(f1.as_slice()).unwrap());

        let r0 = relation_from_frequencies("r0", "a", &values, &f0_arranged, 7).unwrap();
        let r1 = relation_from_frequencies("r1", "a", &values, &f1_arranged, 8).unwrap();

        // Theorem 2.1 product.
        let product = chain_product(&[
            FreqMatrix::horizontal(f0_arranged.as_slice().to_vec()),
            FreqMatrix::vertical(f1_arranged.as_slice().to_vec()),
        ])
        .unwrap();
        // Actual hash-join execution.
        let executed = hash_join_count(&r0, "a", &r1, "a").unwrap();
        // Algorithm JointMatrix.
        let joint = joint_frequency_table(&r0, "a", &r1, "a")
            .unwrap()
            .join_size();

        assert_eq!(product, executed, "z={z}");
        assert_eq!(product, joint, "z={z}");
    }
}

/// 3-relation chain (2 joins) with a genuine 2-D middle relation:
/// product == executed count.
#[test]
fn three_relation_chain_sizes_agree() {
    let m = 8usize;
    let a_values: Vec<u64> = (0..m as u64).collect();
    let b_values: Vec<u64> = (100..100 + m as u64).collect();

    let f0 = zipf_frequencies(60, m, 1.0).unwrap();
    let fmid = zipf_frequencies(200, m * m, 0.8).unwrap();
    let f2 = zipf_frequencies(50, m, 0.3).unwrap();

    let arr = Arrangement::random_batch(m * m, 1, 5).remove(0);
    let mid_matrix = FreqMatrix::from_arrangement(&fmid, m, m, &arr).unwrap();

    let r0 = relation_from_frequencies("r0", "a1", &a_values, &f0, 1).unwrap();
    let r1 = relation_from_matrix("r1", "a1", "a2", &a_values, &b_values, &mid_matrix, 2).unwrap();
    let r2 = relation_from_frequencies("r2", "a2", &b_values, &f2, 3).unwrap();

    let product = chain_product(&[
        FreqMatrix::horizontal(f0.as_slice().to_vec()),
        mid_matrix.clone(),
        FreqMatrix::vertical(f2.as_slice().to_vec()),
    ])
    .unwrap();

    let executed = chain_join_count(&[&r0, &r1, &r2], &[("a1", "a1"), ("a2", "a2")]).unwrap();
    assert_eq!(product, executed);
}

/// Statistics collected from materialised relations reproduce the
/// frequency structures they were generated from (up to zero-frequency
/// values, which never materialise).
#[test]
fn statistics_round_trip_generated_relations() {
    let m = 30usize;
    let values: Vec<u64> = (0..m as u64).collect();
    let freqs = zipf_frequencies(1000, m, 1.0).unwrap();
    let rel = relation_from_frequencies("r", "a", &values, &freqs, 11).unwrap();
    let table = frequency_table(&rel, "a").unwrap();
    for (i, &v) in values.iter().enumerate() {
        assert_eq!(table.frequency_of(v), freqs.as_slice()[i], "value {v}");
    }

    // 2-D: the recovered matrix (restricted to surviving pairs) matches.
    let mid = zipf_frequencies(300, 16, 1.0).unwrap();
    let arr = Arrangement::identity(16);
    let matrix = FreqMatrix::from_arrangement(&mid, 4, 4, &arr).unwrap();
    let a_vals: Vec<u64> = (0..4).collect();
    let b_vals: Vec<u64> = (10..14).collect();
    let rel2 = relation_from_matrix("r2", "x", "y", &a_vals, &b_vals, &matrix, 4).unwrap();
    let t2 = frequency_matrix_table(&rel2, "x", "y").unwrap();
    for (ri, &rv) in t2.row_values.iter().enumerate() {
        for (ci, &cv) in t2.col_values.iter().enumerate() {
            let orig = matrix.get(rv as usize, (cv - 10) as usize);
            assert_eq!(t2.matrix.get(ri, ci), orig, "pair ({rv}, {cv})");
        }
    }
}

/// The matrix product also agrees with execution when the relations are
/// unbalanced (empty join sides, missing values).
#[test]
fn degenerate_joins_agree() {
    let values: Vec<u64> = (0..5).collect();
    // r0 misses values 3 and 4 entirely; r1 misses 0.
    let f0 = FrequencySet::new(vec![4, 2, 1, 0, 0]);
    let f1 = FrequencySet::new(vec![0, 3, 5, 2, 7]);
    let r0 = relation_from_frequencies("r0", "a", &values, &f0, 1).unwrap();
    let r1 = relation_from_frequencies("r1", "a", &values, &f1, 2).unwrap();
    let product = chain_product(&[
        FreqMatrix::horizontal(f0.as_slice().to_vec()),
        FreqMatrix::vertical(f1.as_slice().to_vec()),
    ])
    .unwrap();
    let executed = hash_join_count(&r0, "a", &r1, "a").unwrap();
    assert_eq!(product, executed);
    assert_eq!(product, 2 * 3 + 1 * 5);
}
