//! CLI-level tests for `histctl`, driving the real binary: the builder
//! registry is the single source of histogram-class names, so unknown
//! `--class` values must fail with the registry's error (listing every
//! valid name) on stderr and a nonzero exit code, while every valid name
//! analyzes cleanly.

use std::path::PathBuf;
use std::process::{Command, Output};

fn histctl(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_histctl"))
        .args(args)
        .output()
        .expect("histctl binary runs")
}

/// A scratch directory unique to this test binary's process.
fn scratch(file: &str) -> String {
    let mut dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    dir.push("histctl_cli");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.push(file);
    dir.to_str().expect("utf-8 path").to_string()
}

fn generate_csv(name: &str) -> String {
    let csv = scratch(name);
    let out = histctl(&[
        "generate",
        "--rows",
        "5000",
        "--distinct",
        "100",
        "--skew",
        "1.0",
        "--out",
        &csv,
    ]);
    assert!(out.status.success(), "generate failed: {out:?}");
    csv
}

#[test]
fn unknown_class_fails_listing_valid_names() {
    let csv = generate_csv("unknown_class.csv");
    let voh = scratch("unknown_class.voh");
    let out = histctl(&[
        "analyze",
        "--input",
        &csv,
        "--column",
        "value",
        "--buckets",
        "5",
        "--out",
        &voh,
        "--class",
        "zipf_magic",
    ]);
    assert!(!out.status.success(), "unknown class must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown histogram class 'zipf_magic'"),
        "stderr should name the bad class: {stderr}"
    );
    // The registry's error lists every valid spelling.
    for name in ["v_opt_end_biased", "v_opt_serial", "max_diff", "equi_depth"] {
        assert!(stderr.contains(name), "stderr should list {name}: {stderr}");
    }
    assert!(
        String::from_utf8_lossy(&out.stdout).is_empty(),
        "errors must not pollute stdout"
    );
}

#[test]
fn every_registry_class_analyzes() {
    let csv = generate_csv("all_classes.csv");
    for class in [
        "trivial",
        "equi_width",
        "equi_depth",
        "v_opt_serial",
        "v_opt_end_biased",
        "max_diff",
        "end_biased:2,1",
    ] {
        let voh = scratch(&format!("{}.voh", class.replace([':', ','], "_")));
        let out = histctl(&[
            "analyze",
            "--input",
            &csv,
            "--column",
            "value",
            "--buckets",
            "5",
            "--out",
            &voh,
            "--class",
            class,
        ]);
        assert!(
            out.status.success(),
            "--class {class} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let inspect = histctl(&["inspect", "--hist", &voh]);
        assert!(inspect.status.success(), "inspect failed for {class}");
    }
}

#[test]
fn class_flag_reaches_query_pipeline() {
    let csv = generate_csv("query_class.csv");
    let out = histctl(&[
        "query",
        "--sql",
        "SELECT COUNT(*) FROM t WHERE t.value = 0",
        "--tables",
        &format!("t={csv}"),
        "--class",
        "max_diff",
    ]);
    assert!(
        out.status.success(),
        "query with --class failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("class=max_diff"),
        "estimate line should echo the class: {stdout}"
    );
}

#[test]
fn serve_then_recover_round_trips_the_journaled_catalog() {
    let csv = generate_csv("serve.csv");
    let data_dir = scratch("serve_store");
    let _ = std::fs::remove_dir_all(&data_dir);

    let serve = histctl(&[
        "serve",
        "--data-dir",
        &data_dir,
        "--tables",
        &format!("orders={csv}"),
        "--sweeps",
        "3",
        "--buckets",
        "6",
    ]);
    assert!(
        serve.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&serve.stderr)
    );
    let stdout = String::from_utf8_lossy(&serve.stdout);
    assert!(
        stdout.contains("3 sweep(s) over 1 column(s)"),
        "serve should report its bounded run: {stdout}"
    );
    // The first sweep analyzes the column; later sweeps find it fresh.
    assert!(
        stdout.contains("tick 1: refreshed orders(value)"),
        "serve should trace the refresh: {stdout}"
    );
    assert!(
        stdout.contains("breakers: 1 closed, 0 open, 0 half-open"),
        "healthy run keeps the breaker closed: {stdout}"
    );

    let recover = histctl(&["recover", "--data-dir", &data_dir]);
    assert!(
        recover.status.success(),
        "recover failed: {}",
        String::from_utf8_lossy(&recover.stderr)
    );
    let recovered = String::from_utf8_lossy(&recover.stdout);
    assert!(
        recovered.contains("1 column histogram(s)"),
        "recover should find the daemon's histogram: {recovered}"
    );
    assert!(
        recovered.contains("orders(value): 6 buckets"),
        "recover should list the entry: {recovered}"
    );
}

#[test]
fn recover_survives_a_torn_journal_tail() {
    let csv = generate_csv("torn.csv");
    let data_dir = scratch("torn_store");
    let _ = std::fs::remove_dir_all(&data_dir);
    let serve = histctl(&[
        "serve",
        "--data-dir",
        &data_dir,
        "--tables",
        &format!("t={csv}"),
        "--sweeps",
        "1",
    ]);
    assert!(serve.status.success());

    // Simulate a crash mid-append: a torn half-frame at the journal tail
    // (a length prefix promising more bytes than exist).
    let journal = PathBuf::from(&data_dir).join("journal.0000000000000000.wal");
    let mut bytes = std::fs::read(&journal).expect("read journal");
    bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xAB]);
    std::fs::write(&journal, &bytes).expect("write torn journal");

    let recover = histctl(&["recover", "--data-dir", &data_dir]);
    assert!(
        recover.status.success(),
        "recover must tolerate a torn tail: {}",
        String::from_utf8_lossy(&recover.stderr)
    );
    let recovered = String::from_utf8_lossy(&recover.stdout);
    assert!(
        recovered.contains("1 column histogram(s)"),
        "the committed prefix must survive: {recovered}"
    );
}

#[test]
fn recover_on_a_missing_directory_is_an_empty_catalog() {
    let data_dir = scratch("never_served");
    let _ = std::fs::remove_dir_all(&data_dir);
    let recover = histctl(&["recover", "--data-dir", &data_dir]);
    assert!(
        recover.status.success(),
        "recovering nothing is a fresh catalog, not an error: {}",
        String::from_utf8_lossy(&recover.stderr)
    );
    let recovered = String::from_utf8_lossy(&recover.stdout);
    assert!(
        recovered.contains("0 column histogram(s), 0 joint histogram(s)"),
        "empty recovery should say so: {recovered}"
    );
}

#[test]
fn metrics_exposition_covers_durability_and_ladder_families() {
    let out = histctl(&["metrics", "--format", "prometheus", "--buckets", "6"]);
    assert!(
        out.status.success(),
        "metrics failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for family in [
        "wal_journal_bytes",
        "daemon_breaker_closed",
        "daemon_breaker_open",
        "daemon_breaker_half_open",
        "daemon_sweep_seconds",
        r#"estimate_rung_total{rung="uniform"}"#,
        "wal_torn_tail_total",
        "qerror_drift_events_total",
        "qerror_nonfinite_dropped_total",
        "trace_events_dropped_total",
        r#"qerror_ewma{rung="spec"}"#,
        r#"qerror_ewma{rung="uniform"}"#,
    ] {
        assert!(
            text.contains(family),
            "exposition should cover {family}: got {} bytes of text",
            text.len()
        );
    }
    // The demo workload estimates with fresh statistics, so the spec
    // rung must have actually been exercised, not just registered.
    let spec_line = text
        .lines()
        .find(|l| l.starts_with(r#"estimate_rung_total{rung="spec"}"#))
        .expect("spec rung counter line");
    let count: u64 = spec_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("counter value parses");
    assert!(
        count > 0,
        "demo workload should hit the spec rung: {spec_line}"
    );
}

#[test]
fn selftest_is_byte_identical_across_reruns() {
    let first = histctl(&["selftest", "--seed", "3", "--budget-ms", "0"]);
    assert!(
        first.status.success(),
        "selftest failed: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = histctl(&["selftest", "--seed", "3", "--budget-ms", "0"]);
    assert!(second.status.success());
    assert_eq!(
        first.stdout, second.stdout,
        "same seed and budget must produce byte-identical JSON"
    );
    let report = String::from_utf8_lossy(&first.stdout);
    assert!(report.contains("\"passed\":true"), "report: {report}");
    assert!(report.contains("\"seed\":3"), "report: {report}");
    assert!(
        report.contains("tracing_transparent"),
        "selftest must run the tracing-transparency invariant: {report}"
    );

    let other = histctl(&["selftest", "--seed", "4", "--budget-ms", "0"]);
    assert!(other.status.success());
    assert_ne!(
        first.stdout, other.stdout,
        "different seeds must exercise different workloads"
    );
}

#[test]
fn selftest_rejects_a_corrupted_snapshot() {
    let snap = scratch("selftest_ref.snap");
    let out = histctl(&[
        "selftest",
        "--seed",
        "2",
        "--budget-ms",
        "0",
        "--emit-snapshot",
        &snap,
    ]);
    assert!(
        out.status.success(),
        "emit-snapshot failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The pristine snapshot verifies.
    let ok = histctl(&[
        "selftest",
        "--seed",
        "2",
        "--budget-ms",
        "0",
        "--snapshot",
        &snap,
    ]);
    assert!(
        ok.status.success(),
        "clean snapshot rejected: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Flip one byte in the middle: the run must exit nonzero with the
    // error on stderr, before any checks execute.
    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    let bad = scratch("selftest_bad.snap");
    std::fs::write(&bad, &bytes).expect("write corrupted snapshot");
    let err = histctl(&[
        "selftest",
        "--seed",
        "2",
        "--budget-ms",
        "0",
        "--snapshot",
        &bad,
    ]);
    assert!(
        !err.status.success(),
        "corrupted snapshot must exit nonzero"
    );
    let stderr = String::from_utf8_lossy(&err.stderr);
    assert!(
        stderr.contains("snapshot") && stderr.contains(&bad),
        "stderr should name the snapshot: {stderr}"
    );
    assert!(
        String::from_utf8_lossy(&err.stdout).is_empty(),
        "a rejected snapshot must not emit a report on stdout"
    );
}

/// Extracts every `"digest":"..."` value from a bench JSON report.
fn digests_of(json: &str) -> Vec<String> {
    json.split("\"digest\":\"")
        .skip(1)
        .map(|rest| rest.split('"').next().unwrap().to_string())
        .collect()
}

/// Extracts every `"ops":N` value from a bench JSON report.
fn ops_of(json: &str) -> Vec<u64> {
    json.split("\"ops\":")
        .skip(1)
        .map(|rest| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
                .parse()
                .expect("ops value")
        })
        .collect()
}

#[test]
fn bench_reports_the_full_schema_with_nonzero_ops() {
    let out = histctl(&[
        "bench",
        "--threads",
        "1,2",
        "--ops",
        "60",
        "--seed",
        "11",
        "--json",
    ]);
    assert!(
        out.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = String::from_utf8_lossy(&out.stdout);
    for field in [
        "\"schema\":\"histctl-bench-v1\"",
        "\"seed\":11",
        "\"workload\":\"selfjoin\"",
        "\"mode\":\"ops\"",
        "\"threads\":1",
        "\"threads\":2",
        "\"throughput\":",
        "\"p50_ns\":",
        "\"p99_ns\":",
        "\"hit_rate\":",
        "\"evictions\":",
        "\"digest\":\"",
        "\"speedup\":{",
        "\"cached_median_ns\":",
        "\"uncached_median_ns\":",
    ] {
        assert!(json.contains(field), "report missing {field}: {json}");
    }
    // Per-thread fixed op counts: 1×60 and 2×60.
    assert_eq!(ops_of(&json), vec![60, 120], "fixed --ops counts: {json}");
    // p50 must be a real (nonzero) log2-bucket bound once ops ran.
    assert!(!json.contains("\"p50_ns\":0,"), "zero p50 with ops: {json}");
}

#[test]
fn bench_digest_is_identical_across_reruns_with_one_seed() {
    let run = || {
        let out = histctl(&[
            "bench",
            "--threads",
            "1,2",
            "--ops",
            "80",
            "--workload",
            "chain",
            "--seed",
            "23",
            "--json",
        ]);
        assert!(
            out.status.success(),
            "bench failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let (a, b) = (run(), run());
    let (da, db) = (digests_of(&a), digests_of(&b));
    assert_eq!(da.len(), 2, "one digest per thread count: {a}");
    assert_eq!(da, db, "reruns with one --seed must agree bitwise");
    assert_eq!(ops_of(&a), ops_of(&b));
    // A different seed picks different query sequences.
    let out = histctl(&[
        "bench",
        "--threads",
        "1,2",
        "--ops",
        "80",
        "--workload",
        "chain",
        "--seed",
        "24",
        "--json",
    ]);
    assert!(out.status.success());
    let other = digests_of(&String::from_utf8_lossy(&out.stdout));
    assert_ne!(da, other, "different seeds must not collide");
}

#[test]
fn bench_writes_the_report_file_and_summarizes_speedup() {
    let path = scratch("bench_out.json");
    let out = histctl(&[
        "bench",
        "--threads",
        "1",
        "--ops",
        "40",
        "--seed",
        "5",
        "--out",
        &path,
    ]);
    assert!(
        out.status.success(),
        "bench failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Human summary on stdout, full JSON in the file.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("single lookup"), "summary: {stdout}");
    let json = std::fs::read_to_string(&path).expect("report file");
    assert!(
        json.starts_with("{\"schema\":\"histctl-bench-v1\""),
        "{json}"
    );
    assert!(
        json.ends_with("}\n"),
        "report must be one JSON line: {json}"
    );
}

#[test]
fn bench_rejects_unknown_workloads_and_zero_threads() {
    let bad = histctl(&["bench", "--workload", "starjoin", "--ops", "1"]);
    assert!(!bad.status.success(), "unknown workload must exit nonzero");
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("workload"),
        "stderr should name the flag"
    );
    let zero = histctl(&["bench", "--threads", "0", "--ops", "1"]);
    assert!(!zero.status.success(), "zero threads must exit nonzero");
}

/// The sequence of `"event":"..."` names in a trace dump, in order.
fn event_names_of(jsonl: &str) -> Vec<String> {
    jsonl
        .lines()
        .skip(1)
        .map(|line| {
            line.split("\"event\":\"")
                .nth(1)
                .unwrap_or_else(|| panic!("no event field in {line}"))
                .split('"')
                .next()
                .unwrap()
                .to_string()
        })
        .collect()
}

#[test]
fn trace_dumps_provenance_jsonl_deterministic_under_seed() {
    let run = |file: &str| {
        let path = scratch(file);
        let out = histctl(&["trace", "--out", &path, "--seed", "7"]);
        assert!(
            out.status.success(),
            "trace failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains("trace: wrote"),
            "summary line expected"
        );
        std::fs::read_to_string(&path).expect("trace file")
    };
    let text = run("trace_a.jsonl");
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines[0].contains("\"schema\":\"histctl-trace-v1\""),
        "header: {}",
        lines[0]
    );
    assert_eq!(
        lines.len() - 1,
        lines[0]
            .split("\"events\":")
            .nth(1)
            .and_then(|r| r.split([',', '}']).next())
            .and_then(|n| n.parse::<usize>().ok())
            .expect("events count in header"),
        "header event count must match the body"
    );
    // Every event line carries the merge-ordering and causal fields,
    // and the global sequence is strictly increasing.
    let mut last_seq = 0u64;
    for line in &lines[1..] {
        for field in [
            "\"seq\":",
            "\"ts_ns\":",
            "\"thread\":",
            "\"span\":",
            "\"parent\":",
        ] {
            assert!(line.contains(field), "missing {field}: {line}");
        }
        let seq: u64 = line
            .split("\"seq\":")
            .nth(1)
            .and_then(|r| r.split(',').next())
            .and_then(|n| n.parse().ok())
            .expect("seq parses");
        assert!(seq > last_seq, "seq must be strictly increasing: {line}");
        last_seq = seq;
    }
    // The demo workload touches every estimation layer: spans, cache
    // probes, rung choices, and statistics resolutions all show up.
    let names = event_names_of(&text);
    for expected in [
        "span_open",
        "span_close",
        "cache_miss",
        "rung",
        "stats_resolved",
    ] {
        assert!(
            names.iter().any(|n| n == expected),
            "trace should record {expected}: {names:?}"
        );
    }
    // Reruns with the same seed replay the same workload: the event
    // sequence (names, in order) is identical even though timings vary.
    let again = run("trace_b.jsonl");
    assert_eq!(names, event_names_of(&again), "same seed, same events");
}

#[test]
fn trace_chrome_format_loads_as_trace_events() {
    let path = scratch("trace.chrome.json");
    let out = histctl(&["trace", "--out", &path, "--format", "chrome", "--seed", "7"]);
    assert!(
        out.status.success(),
        "chrome trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("chrome trace file");
    assert!(text.starts_with("{\"traceEvents\":["), "envelope: {text}");
    assert!(text.contains("\"ph\":\"X\""), "spans become X events");
    assert!(text.contains("\"ph\":\"i\""), "instants become i events");
    assert!(
        !text.contains("span_open"),
        "opens are implied by complete events"
    );
    let bad = histctl(&["trace", "--out", &path, "--format", "xml"]);
    assert!(!bad.status.success(), "unknown format must exit nonzero");
}

#[test]
fn top_ranks_columns_deterministically() {
    let run = || {
        let out = histctl(&["top", "--by", "max-q", "--seed", "9"]);
        assert!(
            out.status.success(),
            "top failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed must rank identically, byte for byte");
    assert!(a.contains("top columns by max-q"), "header: {a}");
    // The demo workload's engine phase estimates over orders and stock,
    // so both columns have per-column quality scopes to rank.
    for column in ["orders.part", "stock.part"] {
        assert!(a.contains(column), "should rank {column}: {a}");
    }
    assert!(a.contains("  1. "), "ranked list starts at 1: {a}");
    let bad = histctl(&["top", "--by", "p99"]);
    assert!(!bad.status.success(), "unknown ranking must exit nonzero");
}

#[test]
fn any_command_dumps_the_recorder_via_trace_out() {
    let path = scratch("bench_trace.jsonl");
    let out = histctl(&[
        "bench",
        "--threads",
        "1",
        "--ops",
        "30",
        "--seed",
        "5",
        "--json",
        "--trace-out",
        &path,
    ]);
    assert!(
        out.status.success(),
        "bench --trace-out failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The bench report still owns stdout; the dump summary goes to stderr.
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"schema\":\"histctl-bench-v1\""),
        "bench JSON stays on stdout"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("trace event(s)"),
        "dump summary on stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("trace file");
    assert!(
        text.lines()
            .next()
            .unwrap()
            .contains("\"schema\":\"histctl-trace-v1\""),
        "header: {text}"
    );
    let names = event_names_of(&text);
    // The bench drives the full stack: cached estimates (hits after the
    // first probe), daemon sweeps, and WAL appends from the churn's
    // re-ANALYZE refreshes — all from threads that exited before the
    // dump, proving ring retirement keeps worker events.
    for expected in ["cache_hit", "daemon_sweep", "wal_append"] {
        assert!(
            names.iter().any(|n| n == expected),
            "bench trace should record {expected}: {names:?}"
        );
    }
}

// --- serve --listen / client / bench --remote ------------------------

/// A `histctl serve --listen` subprocess bound to an ephemeral port.
/// Reads the first stdout line to learn the kernel-picked address and
/// kills the process on drop so a failing test never leaks a listener.
struct ServeGuard {
    child: std::process::Child,
    addr: String,
    stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl ServeGuard {
    fn start(tenants_dir: &str, extra: &[&str]) -> ServeGuard {
        use std::io::BufRead;
        let mut child = Command::new(env!("CARGO_BIN_EXE_histctl"))
            .args(["serve", "--listen", "127.0.0.1:0", "--tenants", tenants_dir])
            .args(extra)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::piped())
            .spawn()
            .expect("spawn histctl serve");
        let mut stdout = std::io::BufReader::new(child.stdout.take().expect("serve stdout"));
        let mut first = String::new();
        stdout.read_line(&mut first).expect("serve banner");
        let addr = first
            .split_whitespace()
            .nth(2)
            .unwrap_or_else(|| panic!("no address in serve banner: {first:?}"))
            .to_string();
        assert!(
            addr.starts_with("127.0.0.1:") && !addr.ends_with(":0"),
            "serve must report the bound ephemeral port, got {addr:?} in {first:?}"
        );
        ServeGuard {
            child,
            addr,
            stdout,
        }
    }

    /// Waits for the server to exit after a client-requested SHUTDOWN
    /// and returns its remaining stdout (the checkpoint summary line).
    fn wait(mut self) -> String {
        use std::io::Read;
        let status = self.child.wait().expect("serve exit status");
        assert!(status.success(), "serve exited nonzero: {status:?}");
        let mut rest = String::new();
        self.stdout
            .read_to_string(&mut rest)
            .expect("serve stdout tail");
        // Disarm the drop kill: the child is already reaped.
        std::mem::forget(self);
        rest
    }
}

impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn serve_listen_client_round_trip_checkpoints_on_shutdown() {
    let tenants = scratch("net_roundtrip_tenants");
    let _ = std::fs::remove_dir_all(&tenants);
    let server = ServeGuard::start(&tenants, &[]);
    let addr = server.addr.clone();

    let out = histctl(&["client", "--addr", &addr, "--op", "ping"]);
    assert!(out.status.success(), "ping failed: {out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "pong");

    let csv = generate_csv("net_roundtrip.csv");
    let out = histctl(&[
        "client",
        "--addr",
        &addr,
        "--op",
        "load",
        "--tenant",
        "acme",
        "--table",
        &format!("orders={csv}"),
    ]);
    assert!(out.status.success(), "load failed: {out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("5000 row(s) into acme/orders"),
        "load output: {out:?}"
    );

    let out = histctl(&[
        "client",
        "--addr",
        &addr,
        "--op",
        "analyze",
        "--tenant",
        "acme",
        "--buckets",
        "8",
        "--class",
        "max_diff",
    ]);
    assert!(out.status.success(), "analyze failed: {out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("1 histogram(s), epoch 1"),
        "analyze output: {out:?}"
    );

    let out = histctl(&[
        "client",
        "--addr",
        &addr,
        "--op",
        "estimate",
        "--tenant",
        "acme",
        "--sql",
        "select count(*) from orders where orders.value = 3",
    ]);
    assert!(out.status.success(), "estimate failed: {out:?}");
    let estimate_line = String::from_utf8_lossy(&out.stdout).trim().to_string();
    assert!(
        estimate_line.starts_with("estimate ") && estimate_line.contains("orders.value"),
        "estimate output: {estimate_line}"
    );

    let out = histctl(&[
        "client", "--addr", &addr, "--op", "epoch", "--tenant", "acme",
    ]);
    assert!(out.status.success(), "epoch failed: {out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "1");

    // Tenant isolation is visible from the CLI too: the same relation
    // name in another tenant is unknown.
    let out = histctl(&[
        "client",
        "--addr",
        &addr,
        "--op",
        "estimate",
        "--tenant",
        "rival",
        "--sql",
        "select count(*) from orders",
    ]);
    assert!(!out.status.success(), "cross-tenant estimate must fail");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unknown relation"),
        "cross-tenant stderr: {out:?}"
    );

    let out = histctl(&["client", "--addr", &addr, "--op", "metrics"]);
    assert!(out.status.success(), "metrics failed: {out:?}");
    let metrics = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        metrics.contains("net_requests_total{op=\"estimate\"}"),
        "metrics should count wire requests by op: {metrics}"
    );

    let out = histctl(&["client", "--addr", &addr, "--op", "shutdown"]);
    assert!(out.status.success(), "shutdown failed: {out:?}");
    let tail = server.wait();
    assert!(
        tail.contains("checkpointed") && tail.contains("tenant(s)"),
        "shutdown summary: {tail:?}"
    );
    // The graceful shutdown checkpointed the tenant's journal into a
    // snapshot, recoverable offline by the existing recover command.
    let out = histctl(&["recover", "--data-dir", &format!("{tenants}/acme")]);
    assert!(out.status.success(), "recover failed: {out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("1 column histogram(s)"),
        "recover output: {out:?}"
    );
}

#[test]
fn bench_remote_digests_match_the_inprocess_run() {
    let tenants = scratch("net_bench_tenants");
    let _ = std::fs::remove_dir_all(&tenants);
    let server = ServeGuard::start(&tenants, &[]);
    let addr = server.addr.clone();

    let args = [
        "bench",
        "--threads",
        "1,2",
        "--ops",
        "80",
        "--seed",
        "9",
        "--workload",
        "range",
        "--json",
    ];
    let local = histctl(&args);
    assert!(local.status.success(), "local bench failed: {local:?}");
    let mut remote_args: Vec<&str> = args.to_vec();
    remote_args.extend_from_slice(&["--remote", &addr]);
    let remote = histctl(&remote_args);
    assert!(remote.status.success(), "remote bench failed: {remote:?}");

    let local_json = String::from_utf8_lossy(&local.stdout).to_string();
    let remote_json = String::from_utf8_lossy(&remote.stdout).to_string();
    assert!(
        local_json.contains("\"transport\":\"inprocess\""),
        "{local_json}"
    );
    assert!(
        remote_json.contains("\"transport\":\"remote\""),
        "{remote_json}"
    );
    // Same seed, same op counts -> bit-identical result digests across
    // transports: the serving layer adds latency, never error.
    assert_eq!(ops_of(&local_json), ops_of(&remote_json));
    assert_eq!(
        digests_of(&local_json),
        digests_of(&remote_json),
        "wire digests must equal in-process digests\nlocal:  {local_json}\nremote: {remote_json}"
    );

    let out = histctl(&["client", "--addr", &addr, "--op", "shutdown"]);
    assert!(out.status.success(), "shutdown failed: {out:?}");
    server.wait();
}

#[test]
fn serve_connection_limit_rejects_with_a_typed_error() {
    let tenants = scratch("net_connlimit_tenants");
    let _ = std::fs::remove_dir_all(&tenants);
    let server = ServeGuard::start(&tenants, &["--max-conns", "0"]);
    let addr = server.addr.clone();
    let out = histctl(&["client", "--addr", &addr, "--op", "ping"]);
    assert!(!out.status.success(), "ping must be rejected at the limit");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("connection limit"),
        "typed rejection on stderr: {out:?}"
    );
    // ServeGuard's drop kills the server (no client can reach SHUTDOWN).
}

#[test]
fn client_and_serve_usage_errors_exit_nonzero() {
    // client without --addr.
    let out = histctl(&["client", "--op", "ping"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --addr"));

    // client with an unknown op.
    let out = histctl(&["client", "--addr", "127.0.0.1:1", "--op", "frobnicate"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--op must be"),
        "unknown op lists the valid ones: {out:?}"
    );

    // client estimate without --tenant.
    let out = histctl(&[
        "client",
        "--addr",
        "127.0.0.1:1",
        "--op",
        "estimate",
        "--sql",
        "select count(*) from t",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --tenant"));

    // serve --listen without --tenants.
    let out = histctl(&["serve", "--listen", "127.0.0.1:0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing --tenants"));

    // bench --remote against a dead address fails loudly, not silently.
    let out = histctl(&[
        "bench",
        "--threads",
        "1",
        "--ops",
        "5",
        "--json",
        "--remote",
        "127.0.0.1:1",
    ]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("connect 127.0.0.1:1"),
        "dead remote: {out:?}"
    );
}
