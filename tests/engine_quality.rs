//! Engine-level estimation quality: the full system path (SQL text →
//! catalog statistics → estimate) against exact execution, across
//! statistics budgets.

use engine::Engine;
use freqdist::zipf::zipf_frequencies;
use freqdist::{Arrangement, FreqMatrix};
use relstore::generate::{relation_from_frequency_set, relation_from_matrix};

fn build_engine() -> Engine {
    let mut e = Engine::new();
    let orders = zipf_frequencies(1_500, 100, 1.2).unwrap();
    e.register(relation_from_frequency_set("orders", "part", &orders, 1).unwrap());
    let pairs = zipf_frequencies(2_500, 100 * 20, 0.9).unwrap();
    let arr = Arrangement::random_batch(100 * 20, 1, 9).remove(0);
    let matrix = FreqMatrix::from_arrangement(&pairs, 100, 20, &arr).unwrap();
    let parts: Vec<u64> = (0..100).collect();
    let sups: Vec<u64> = (0..20).collect();
    e.register(
        relation_from_matrix("lineitem", "part", "supplier", &parts, &sups, &matrix, 2).unwrap(),
    );
    let suppliers = zipf_frequencies(400, 20, 0.4).unwrap();
    e.register(relation_from_frequency_set("suppliers", "supplier", &suppliers, 3).unwrap());
    e
}

fn q_error(est: f64, actual: u128) -> f64 {
    let a = (actual as f64).max(1.0);
    (est.max(1e-9) / a).max(a / est.max(1e-9))
}

const WORKLOAD: [&str; 5] = [
    "SELECT COUNT(*) FROM orders WHERE orders.part = 0",
    "SELECT COUNT(*) FROM orders WHERE orders.part BETWEEN 50 AND 80",
    "SELECT COUNT(*) FROM orders, lineitem WHERE orders.part = lineitem.part",
    "SELECT COUNT(*) FROM lineitem, suppliers WHERE lineitem.supplier = suppliers.supplier",
    "SELECT COUNT(*) FROM orders, lineitem, suppliers \
     WHERE orders.part = lineitem.part AND lineitem.supplier = suppliers.supplier",
];

/// More buckets never hurt the workload's worst Q-error, and ten-bucket
/// statistics keep every query within a modest factor.
#[test]
fn bucket_budget_improves_q_error() {
    let mut uniform = build_engine();
    uniform.analyze_all(1).unwrap();
    let mut skewed = build_engine();
    skewed.analyze_all(10).unwrap();

    let mut worst_uniform = 1.0f64;
    let mut worst_skewed = 1.0f64;
    for text in WORKLOAD {
        let q = uniform.parse(text).unwrap();
        let actual = uniform.execute(&q).unwrap();
        worst_uniform = worst_uniform.max(q_error(uniform.estimate(&q).unwrap(), actual));
        worst_skewed = worst_skewed.max(q_error(skewed.estimate(&q).unwrap(), actual));
    }
    assert!(
        worst_skewed <= worst_uniform,
        "10 buckets ({worst_skewed:.2}x) should not be worse than 1 ({worst_uniform:.2}x)"
    );
    assert!(
        worst_skewed < 3.0,
        "10-bucket worst q-error {worst_skewed:.2}x too large"
    );
}

/// Execution agrees with the substrate's hash joins regardless of the
/// textual route in.
#[test]
fn sql_execution_matches_substrate() {
    let mut e = build_engine();
    e.analyze_all(5).unwrap();
    let q = e
        .parse("SELECT COUNT(*) FROM orders, lineitem WHERE orders.part = lineitem.part")
        .unwrap();
    let via_sql = e.execute(&q).unwrap();
    let direct = relstore::join::hash_join_count(
        e.relation("orders").unwrap(),
        "part",
        e.relation("lineitem").unwrap(),
        "part",
    )
    .unwrap();
    assert_eq!(via_sql, direct);
}

/// Exact-statistics estimation (β = number of distinct values) makes
/// 2-way join estimates exact.
#[test]
fn exact_statistics_give_exact_join_estimates() {
    let mut e = build_engine();
    e.analyze_all(10_000).unwrap(); // clamped to M per column
    let q = e
        .parse("SELECT COUNT(*) FROM orders, lineitem WHERE orders.part = lineitem.part")
        .unwrap();
    let actual = e.execute(&q).unwrap() as f64;
    let est = e.estimate(&q).unwrap();
    assert!(
        (est - actual).abs() < 1e-6 * actual,
        "est {est} vs actual {actual}"
    );
}

/// Filters compose with joins in the estimate and keep it on the right
/// order of magnitude.
#[test]
fn filtered_join_estimates_are_sane() {
    let mut e = build_engine();
    e.analyze_all(10).unwrap();
    let q = e
        .parse(
            "SELECT COUNT(*) FROM orders, lineitem \
             WHERE orders.part = lineitem.part AND orders.part IN (0, 1, 2)",
        )
        .unwrap();
    let actual = e.execute(&q).unwrap();
    let est = e.estimate(&q).unwrap();
    assert!(actual > 0);
    assert!(q_error(est, actual) < 3.0, "est {est} vs actual {actual}");
}
