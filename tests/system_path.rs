//! The system path end to end: relations → ANALYZE → catalog → codec →
//! optimizer estimates, cross-checked against both the analysis-layer
//! histograms and real join execution.

use freqdist::zipf::zipf_frequencies;
use query::estimate::{estimate_selection, estimate_two_way_join};
use query::selection::Selection;
use relstore::catalog::{StatKey, StoredHistogram};
use relstore::codec::{decode_histogram, encode_histogram};
use relstore::generate::relation_from_frequency_set;
use relstore::join::hash_join_count;
use relstore::sample::{reservoir_sample, top_k_from_sample};
use relstore::stats::frequency_table;
use relstore::Catalog;
use vopt_hist::construct::v_opt_end_biased;
use vopt_hist::RoundingMode;

/// Stored (catalog) estimates equal the analysis-layer histogram's
/// paper-rounded estimates for every domain value.
#[test]
fn catalog_histogram_matches_analysis_histogram() {
    let freqs = zipf_frequencies(2000, 64, 1.1).unwrap();
    let rel = relation_from_frequency_set("r", "a", &freqs, 5).unwrap();
    let table = frequency_table(&rel, "a").unwrap();
    let opt = v_opt_end_biased(&table.freqs, 8).unwrap();
    let stored = StoredHistogram::from_histogram(&table.values, &opt.histogram).unwrap();
    for (i, &v) in table.values.iter().enumerate() {
        assert_eq!(
            stored.approx_frequency(v),
            opt.histogram
                .approx_frequency(i, RoundingMode::PaperRounded) as u64,
            "value {v}"
        );
    }
}

/// ANALYZE → catalog → codec → join estimate vs actual execution: the
/// estimate lands within a sane band of the truth for skewed data (the
/// top frequencies are represented exactly, so the error is bounded by
/// the pooled tail).
#[test]
fn catalog_join_estimate_tracks_actual_join() {
    let m = 200usize;
    let fa = zipf_frequencies(10_000, m, 1.2).unwrap();
    let fb = zipf_frequencies(8_000, m, 1.0).unwrap();
    let ra = relation_from_frequency_set("A", "k", &fa, 1).unwrap();
    let rb = relation_from_frequency_set("B", "k", &fb, 2).unwrap();

    let cat = Catalog::new();
    let ka = cat.analyze_end_biased(&ra, "k", 12).unwrap();
    let kb = cat.analyze_end_biased(&rb, "k", 12).unwrap();

    // Round both histograms through the binary codec, as a real catalog
    // table read would.
    let ha = decode_histogram(encode_histogram(&cat.get(&ka).unwrap())).unwrap();
    let hb = decode_histogram(encode_histogram(&cat.get(&kb).unwrap())).unwrap();

    let domain: Vec<u64> = (0..m as u64).collect();
    let est = estimate_two_way_join(&ha, &hb, &domain);
    let actual = hash_join_count(&ra, "k", &rb, "k").unwrap() as f64;
    let rel_err = (est - actual).abs() / actual;
    assert!(
        rel_err < 0.30,
        "estimate {est} vs actual {actual} (rel err {rel_err:.2})"
    );

    // The trivial histogram (1 bucket) must do worse on this skew.
    let ta = cat.analyze_end_biased(&ra, "k", 1).unwrap();
    let tb = cat.analyze_end_biased(&rb, "k", 1).unwrap();
    let est_triv = estimate_two_way_join(&cat.get(&ta).unwrap(), &cat.get(&tb).unwrap(), &domain);
    let triv_err = (est_triv - actual).abs() / actual;
    assert!(
        rel_err < triv_err,
        "end-biased ({rel_err:.3}) should beat trivial ({triv_err:.3})"
    );
}

/// Selection estimates from the catalog match direct computation against
/// the stored averages, and range/complement arithmetic is consistent.
#[test]
fn catalog_selection_estimates_are_consistent() {
    let m = 50usize;
    let freqs = zipf_frequencies(5000, m, 1.5).unwrap();
    let rel = relation_from_frequency_set("r", "a", &freqs, 9).unwrap();
    let cat = Catalog::new();
    let key = cat.analyze_end_biased(&rel, "a", 6).unwrap();
    let h = cat.get(&key).unwrap();
    let domain: Vec<u64> = (0..m as u64).collect();

    let all = estimate_selection(&h, &domain, &Selection::All).unwrap();
    for i in [0usize, 7, 49] {
        let eq = estimate_selection(&h, &domain, &Selection::Equals(i)).unwrap();
        let ne = estimate_selection(&h, &domain, &Selection::NotEquals(i)).unwrap();
        assert!((all - eq - ne).abs() < 1e-9);
    }
    let lo = estimate_selection(&h, &domain, &Selection::Range { lo: 0, hi: 24 }).unwrap();
    let hi = estimate_selection(&h, &domain, &Selection::Range { lo: 25, hi: 49 }).unwrap();
    assert!((all - lo - hi).abs() < 1e-9);
}

/// §4.2's practical pipeline: sampling identifies the top frequencies,
/// which then seed the end-biased histogram's univalued buckets; the
/// result approximates the exact-statistics histogram closely on Zipf
/// data.
#[test]
fn sampling_seeded_end_biased_close_to_exact() {
    let m = 500usize;
    let freqs = zipf_frequencies(50_000, m, 1.0).unwrap();
    let rel = relation_from_frequency_set("r", "a", &freqs, 13).unwrap();
    let col = rel.column_by_name("a").unwrap();

    // Exact path.
    let table = frequency_table(&rel, "a").unwrap();
    let exact_hist = v_opt_end_biased(&table.freqs, 10).unwrap().histogram;
    let exact_stored = StoredHistogram::from_histogram(&table.values, &exact_hist).unwrap();

    // Sampled path: top-9 values from a 2% sample.
    let sample = reservoir_sample(col, col.len() / 50, 3);
    let top = top_k_from_sample(&sample, col.len(), 9).unwrap();

    // The sampled top-9 must contain most of the exact top-9's values.
    let exact_top: Vec<u64> = (0..9)
        .map(|i| {
            let mut idx: Vec<usize> = (0..table.values.len()).collect();
            idx.sort_by_key(|&j| std::cmp::Reverse(table.freqs[j]));
            table.values[idx[i]]
        })
        .collect();
    let hits = exact_top
        .iter()
        .filter(|v| top.iter().any(|e| e.value == **v))
        .count();
    assert!(hits >= 7, "only {hits}/9 of the true top values were found");

    // And the self-join estimates of the two paths agree within 15%.
    let domain: Vec<u64> = (0..m as u64).collect();
    let exact_est = query::estimate::estimate_self_join(&exact_stored, &domain);
    // Build the sampled histogram: singleton buckets for sampled top
    // values with their scaled counts, one pooled bucket for the rest.
    let total: u64 = rel.num_rows() as u64;
    let top_mass: u64 = top.iter().map(|e| e.estimated_freq).sum();
    let rest_avg = (total.saturating_sub(top_mass)) / (m as u64 - top.len() as u64);
    let mut avgs: Vec<u64> = vec![rest_avg];
    let mut exceptions: Vec<(u64, u32)> = Vec::new();
    // The pooled bucket spans the whole domain; each top value is a
    // singleton span.
    let mut bounds = vec![vopt_hist::ValueBounds {
        lo: 0,
        hi: m as u64,
        distinct: m as u64 - top.len() as u64,
    }];
    for (i, e) in top.iter().enumerate() {
        avgs.push(e.estimated_freq);
        exceptions.push((e.value, (i + 1) as u32));
        bounds.push(vopt_hist::ValueBounds {
            lo: e.value,
            hi: e.value + 1,
            distinct: 1,
        });
    }
    exceptions.sort_unstable_by_key(|&(v, _)| v);
    let sampled_stored = StoredHistogram::from_parts(avgs, 0, exceptions, bounds).unwrap();
    let sampled_est = query::estimate::estimate_self_join(&sampled_stored, &domain);
    let rel_diff = (exact_est - sampled_est).abs() / exact_est;
    assert!(
        rel_diff < 0.15,
        "sampled estimate {sampled_est} vs exact-stat estimate {exact_est}"
    );
}

/// Catalog metadata behaves across the whole flow.
#[test]
fn catalog_keys_and_staleness_flow() {
    let freqs = zipf_frequencies(100, 10, 0.5).unwrap();
    let rel = relation_from_frequency_set("t", "c", &freqs, 21).unwrap();
    let cat = Catalog::new();
    let key = cat.analyze_end_biased(&rel, "c", 3).unwrap();
    assert_eq!(key, StatKey::new("t", &["c"]));
    assert_eq!(cat.staleness(&key).unwrap(), 0);
    cat.note_updates("t", 42);
    assert_eq!(cat.staleness(&key).unwrap(), 42);
    // Re-analyze resets staleness.
    let key2 = cat.analyze_end_biased(&rel, "c", 3).unwrap();
    assert_eq!(cat.staleness(&key2).unwrap(), 0);
}
