//! End-to-end checks of the paper's named results: Example 2.2,
//! Theorem 3.2, Theorem 3.3, Corollary 3.1, and the §5 ranking.

use freqdist::zipf::zipf_frequencies;
use freqdist::FreqMatrix;
use query::metrics::{mean_error, sigma};
use query::montecarlo::{sample_chain, sample_self_join, HistogramSpec, RelationSpec};
use query::selection::Selection;
use query::{ChainQuery, RelationStats};
use vopt_hist::construct::{v_opt_end_biased, v_opt_serial_dp};
use vopt_hist::partition::{ContiguousPartitions, SortedFreqs};
use vopt_hist::RoundingMode;

fn example_2_2_matrices() -> Vec<FreqMatrix> {
    vec![
        FreqMatrix::horizontal(vec![20, 15]),
        FreqMatrix::from_rows(2, 3, vec![25, 10, 12, 4, 12, 3]).unwrap(),
        FreqMatrix::vertical(vec![21, 16, 5]),
    ]
}

/// Example 2.2: S = 19,265, via the query layer.
#[test]
fn example_2_2_through_query_layer() {
    let q = ChainQuery::new(example_2_2_matrices()).unwrap();
    assert_eq!(q.exact_size().unwrap(), 19_265);
}

/// Example 2.2's selection variant: replacing T₂ by the indicator of
/// {u₁, u₃}.
#[test]
fn example_2_2_selection_variant() {
    let mats = example_2_2_matrices();
    let sel = Selection::In(vec![0, 2]).as_vertical(3).unwrap();
    let q = ChainQuery::new(vec![mats[0].clone(), mats[1].clone(), sel]).unwrap();
    assert_eq!(q.exact_size().unwrap(), 845);
}

/// Theorem 3.2: E[S − S'] = 0 over arrangements, for any histogram.
/// Monte-Carlo with a large sample; the mean error must be tiny relative
/// to σ (the fluctuation scale), for several histogram classes.
#[test]
fn theorem_3_2_expected_error_is_zero() {
    let rels = vec![
        RelationSpec::horizontal(zipf_frequencies(300, 8, 1.2).unwrap()),
        RelationSpec::vertical(zipf_frequencies(300, 8, 0.7).unwrap()),
    ];
    for spec in [
        HistogramSpec::Trivial,
        HistogramSpec::VOptEndBiased(3),
        HistogramSpec::EquiDepth(3),
    ] {
        let samples = sample_chain(&rels, &[spec, spec], 6000, 17, RoundingMode::Exact).unwrap();
        let me = mean_error(&samples);
        let sg = sigma(&samples).max(1.0);
        assert!(
            me.abs() < 0.08 * sg,
            "{}: mean error {me} vs sigma {sg}",
            spec.label()
        );
    }
}

/// Theorem 3.3: the self-join-optimal (v-optimal) histogram minimises
/// E[(S − S')²] for a join with an *arbitrary other relation* — compare
/// against every other serial histogram of the same bucket count.
#[test]
fn theorem_3_3_self_join_optimum_is_v_optimal() {
    let m = 7usize;
    let beta = 3usize;
    let b0 = zipf_frequencies(200, m, 1.3).unwrap();
    let b1 = zipf_frequencies(150, m, 0.4).unwrap(); // different contents
    let samples_for = |h0: &vopt_hist::Histogram| -> f64 {
        // Fixed trivial histogram on the other relation; only R0's
        // histogram varies.
        let approx0 = h0.approx_frequencies(RoundingMode::Exact);
        let rels = [&b0, &b1];
        let mut sum_sq = 0.0;
        let n = 4000usize;
        let mut rng_arrs = freqdist::Arrangement::random_batch(m, 2 * n, 23).into_iter();
        for _ in 0..n {
            let a0 = rng_arrs.next().unwrap();
            let a1 = rng_arrs.next().unwrap();
            let f0 = a0.apply(rels[0].as_slice()).unwrap();
            let f1 = a1.apply(rels[1].as_slice()).unwrap();
            let e0 = a0.apply(&approx0).unwrap();
            // Other relation approximated exactly (isolates R0's choice).
            let exact: f64 = f0
                .iter()
                .zip(&f1)
                .map(|(&x, &y)| (x as f64) * (y as f64))
                .sum();
            let est: f64 = e0.iter().zip(&f1).map(|(x, &y)| x * (y as f64)).sum();
            sum_sq += (exact - est) * (exact - est);
        }
        sum_sq / n as f64
    };

    let vopt = v_opt_serial_dp(b0.as_slice(), beta).unwrap();
    let v_err = samples_for(&vopt.histogram);
    let sorted = SortedFreqs::new(b0.as_slice());
    for cuts in ContiguousPartitions::new(m, beta).unwrap() {
        let h = sorted.histogram_from_cuts(b0.as_slice(), &cuts).unwrap();
        let err = samples_for(&h);
        // Allow a small Monte-Carlo tolerance.
        assert!(
            v_err <= err * 1.05 + 1e-6,
            "cuts {cuts:?}: v-opt {v_err} vs alternative {err}"
        );
    }
}

/// Corollary 3.1 at system level: for self-joins the optimal biased
/// histogram is end-biased, so V-OptBiasHist's error can never be beaten
/// by moving a singleton to a non-extreme frequency.
#[test]
fn corollary_3_1_end_biased_optimal_among_biased() {
    let freqs = zipf_frequencies(500, 12, 1.0).unwrap();
    let fast = v_opt_end_biased(freqs.as_slice(), 4).unwrap();
    let brute = vopt_hist::construct::BiasedChoices::new(freqs.as_slice(), 4)
        .unwrap()
        .map(|h| h.self_join_error())
        .fold(f64::INFINITY, f64::min);
    assert!((fast.error - brute).abs() < 1e-6);
}

/// §5.1's headline ranking at the paper's exact parameters
/// (M = 100, z = 1): serial ≤ end-biased ≤ equi-depth ≤ trivial at
/// β = 5, and "much less than half the error of the equi-depth
/// histogram" for every β.
///
/// The paper's companion remark that end-biased error is "usually less
/// than twice" the serial error holds at small bucket counts; at larger
/// β the true serial optimum (which our DP reaches for all β, unlike
/// the paper's exhaustive search, cut off at β = 5) pulls much further
/// ahead — the ratio is recorded in EXPERIMENTS.md. We assert the
/// factor-two bound where it genuinely holds (β ≤ 3).
#[test]
fn section_5_ranking_and_factor_two() {
    let freqs = zipf_frequencies(1000, 100, 1.0).unwrap();
    let sig = |spec| sigma(&sample_self_join(&freqs, spec, 20, 3, RoundingMode::Exact).unwrap());
    let serial = sig(HistogramSpec::VOptSerial(5));
    let biased = sig(HistogramSpec::VOptEndBiased(5));
    let depth = sig(HistogramSpec::EquiDepth(5));
    let trivial = sig(HistogramSpec::Trivial);
    assert!(serial <= biased);
    assert!(biased <= depth);
    assert!(depth <= trivial);
    // "much less than half the error of the equi-depth histogram"
    assert!(biased < depth / 2.0, "biased {biased} vs depth {depth}");
    // Factor-two closeness at small bucket counts.
    for beta in [2usize, 3] {
        let s = sig(HistogramSpec::VOptSerial(beta));
        let b = sig(HistogramSpec::VOptEndBiased(beta));
        assert!(
            b <= 2.0 * s,
            "beta={beta}: end-biased ({b}) more than twice serial ({s})"
        );
    }
}

/// The estimator is exact when every relation gets M buckets, end to end
/// through the ChainQuery layer with a 2-D middle relation.
#[test]
fn exact_histograms_recover_exact_size_through_chain_query() {
    let f0 = zipf_frequencies(100, 4, 1.0).unwrap();
    let fm = zipf_frequencies(200, 12, 0.9).unwrap();
    let f2 = zipf_frequencies(80, 3, 0.2).unwrap();
    let mid =
        FreqMatrix::from_arrangement(&fm, 4, 3, &freqdist::Arrangement::identity(12)).unwrap();
    let q = ChainQuery::new(vec![
        FreqMatrix::horizontal(f0.as_slice().to_vec()),
        mid.clone(),
        FreqMatrix::vertical(f2.as_slice().to_vec()),
    ])
    .unwrap();
    let stats = vec![
        RelationStats::Vector(v_opt_serial_dp(f0.as_slice(), 4).unwrap().histogram),
        RelationStats::Matrix(
            vopt_hist::MatrixHistogram::build(&mid, |c| Ok(v_opt_serial_dp(c, 12)?.histogram))
                .unwrap(),
        ),
        RelationStats::Vector(v_opt_serial_dp(f2.as_slice(), 3).unwrap().histogram),
    ];
    let est = q.estimated_size(&stats, RoundingMode::Exact).unwrap();
    let exact = q.exact_size().unwrap() as f64;
    assert!((est - exact).abs() < 1e-6 * exact.max(1.0));
}
